package rnet

import (
	"math"
	"math/rand"
	"testing"

	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

func geoAPSP(t *testing.T, n int, seed int64) *metric.APSP {
	t.Helper()
	g, _, err := graph.RandomGeometric(n, 0.2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return metric.NewAPSP(g)
}

func checkNetProperties(t *testing.T, a *metric.APSP, net []int, r float64) {
	t.Helper()
	// Covering: every node within r of the net.
	for v := 0; v < a.N(); v++ {
		_, d := a.Nearest(v, net)
		if d > r {
			t.Fatalf("node %d at distance %v > r=%v from net", v, d, r)
		}
	}
	// Packing: net points pairwise >= r.
	for i := 0; i < len(net); i++ {
		for j := i + 1; j < len(net); j++ {
			if d := a.Dist(net[i], net[j]); d < r {
				t.Fatalf("net points %d,%d at distance %v < r=%v", net[i], net[j], d, r)
			}
		}
	}
}

func TestNetProperties(t *testing.T) {
	a := geoAPSP(t, 100, 2)
	for _, r := range []float64{1, 2, 5, a.Diameter() / 2} {
		net := Net(a, r, nil, nil)
		checkNetProperties(t, a, net, r)
	}
}

func TestNetWithSeed(t *testing.T) {
	a := geoAPSP(t, 80, 3)
	coarse := Net(a, 8, nil, nil)
	fine := Net(a, 4, coarse, nil)
	// Seed members must be preserved as a prefix.
	for i, v := range coarse {
		if fine[i] != v {
			t.Fatalf("seed member %d not preserved at %d", v, i)
		}
	}
	checkNetProperties(t, a, fine, 4)
}

func TestHierarchyNesting(t *testing.T) {
	a := geoAPSP(t, 150, 4)
	h := NewHierarchy(a, 0)
	if len(h.Levels[h.L]) != 1 || h.Levels[h.L][0] != 0 {
		t.Fatalf("top level = %v, want [0]", h.Levels[h.L])
	}
	if len(h.Levels[0]) != a.N() {
		t.Fatalf("Y_0 has %d nodes, want %d", len(h.Levels[0]), a.N())
	}
	member := make([]map[int]bool, h.L+1)
	for i := 0; i <= h.L; i++ {
		member[i] = make(map[int]bool, len(h.Levels[i]))
		for _, v := range h.Levels[i] {
			member[i][v] = true
		}
	}
	for i := 0; i < h.L; i++ {
		for v := range member[i+1] {
			if !member[i][v] {
				t.Fatalf("Y_%d member %d missing from Y_%d", i+1, v, i)
			}
		}
	}
	// Each level is a net of its radius.
	for i := 0; i <= h.L; i++ {
		checkNetProperties(t, a, h.Levels[i], h.Radius(i))
	}
	// InLevel/MaxLevel/PosInLevel agree with the level sets.
	for v := 0; v < a.N(); v++ {
		for i := 0; i <= h.L; i++ {
			want := member[i][v]
			if h.InLevel(v, i) != want {
				t.Fatalf("InLevel(%d,%d) = %v, want %v", v, i, h.InLevel(v, i), want)
			}
			if want && h.Levels[i][h.PosInLevel(v, i)] != v {
				t.Fatalf("PosInLevel(%d,%d) inconsistent", v, i)
			}
		}
		if ml := h.MaxLevel(v); !member[ml][v] || (ml < h.L && member[ml+1][v]) {
			t.Fatalf("MaxLevel(%d) = %d wrong", v, ml)
		}
	}
}

func TestZoomSequence(t *testing.T) {
	a := geoAPSP(t, 120, 5)
	h := NewHierarchy(a, 7)
	for v := 0; v < a.N(); v++ {
		seq := h.Zoom(v)
		if seq[0] != v {
			t.Fatalf("zoom(%d)[0] = %d", v, seq[0])
		}
		if seq[h.L] != 7 {
			t.Fatalf("zoom(%d) does not end at root: %v", v, seq)
		}
		total := 0.0
		for i := 1; i <= h.L; i++ {
			if !h.InLevel(seq[i], i) {
				t.Fatalf("zoom(%d)[%d] = %d not in Y_%d", v, i, seq[i], i)
			}
			step := a.Dist(seq[i-1], seq[i])
			// Eqn (2): each step is at most the level radius.
			if step > h.Radius(i)+1e-9 {
				t.Fatalf("zoom step %d->%d at level %d is %v > %v", seq[i-1], seq[i], i, step, h.Radius(i))
			}
			// seq[i] must be the nearest Y_i node to seq[i-1] (ties by id).
			want, _ := a.Nearest(seq[i-1], h.Levels[i])
			if seq[i] != want {
				t.Fatalf("zoom(%d)[%d] = %d, nearest is %d", v, i, seq[i], want)
			}
			total += step
		}
		// Eqn (2): prefix sums < 2^{i+1} (scaled by base).
		if total > 2*h.Radius(h.L)+1e-9 {
			t.Fatalf("zoom(%d) total %v exceeds 2*Radius(L)=%v", v, total, 2*h.Radius(h.L))
		}
	}
}

func TestZoomStepPanicsOutsideHierarchy(t *testing.T) {
	a := geoAPSP(t, 50, 6)
	h := NewHierarchy(a, 0)
	// Find a node not in Y_L-1... use a node whose MaxLevel is 0 if any;
	// otherwise skip (tiny graphs may have all nodes high).
	for v := 0; v < a.N(); v++ {
		if h.MaxLevel(v) == 0 && h.L >= 2 {
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("ZoomStep(%d, 1) did not panic", v)
					}
				}()
				h.ZoomStep(v, 1)
			}()
			return
		}
	}
}

func TestRing(t *testing.T) {
	a := geoAPSP(t, 100, 7)
	h := NewHierarchy(a, 0)
	eps := 0.5
	for _, u := range []int{0, 13, 57} {
		for i := 0; i <= h.L; i++ {
			ring := h.Ring(u, i, eps)
			seen := make(map[int]bool, len(ring))
			for _, x := range ring {
				if !h.InLevel(x, i) {
					t.Fatalf("ring member %d not in Y_%d", x, i)
				}
				if a.Dist(u, x) > h.Radius(i)/eps {
					t.Fatalf("ring member %d too far", x)
				}
				seen[x] = true
			}
			for _, x := range h.Levels[i] {
				if a.Dist(u, x) <= h.Radius(i)/eps && !seen[x] {
					t.Fatalf("ring missing %d at level %d", x, i)
				}
			}
		}
	}
}

func TestRingSizeBound(t *testing.T) {
	// Lemma 2.2: |B_u(r/eps) ∩ Y_i| <= (4/eps)^alpha up to constants.
	// On a planar geometric graph with alpha ~ 3 and eps = 0.5 this is
	// generous; assert a loose but finite bound to catch blowups.
	a := geoAPSP(t, 300, 8)
	h := NewHierarchy(a, 0)
	for u := 0; u < a.N(); u += 17 {
		for i := 0; i <= h.L; i++ {
			if len(h.Ring(u, i, 0.5)) > 200 {
				t.Fatalf("ring (%d, %d) has %d members", u, i, len(h.Ring(u, i, 0.5)))
			}
		}
	}
}

func TestNettingTreeLabels(t *testing.T) {
	a := geoAPSP(t, 130, 9)
	h := NewHierarchy(a, 0)
	tr := NewNettingTree(h)
	// Labels are a permutation of [n].
	seen := make([]bool, a.N())
	for v := 0; v < a.N(); v++ {
		l := tr.Label(v)
		if l < 0 || l >= a.N() || seen[l] {
			t.Fatalf("bad label %d for node %d", l, v)
		}
		seen[l] = true
		if tr.NodeOfLabel(l) != v {
			t.Fatalf("NodeOfLabel(%d) = %d, want %d", l, tr.NodeOfLabel(l), v)
		}
	}
}

func TestNettingTreeRanges(t *testing.T) {
	a := geoAPSP(t, 130, 10)
	h := NewHierarchy(a, 0)
	tr := NewNettingTree(h)
	// The root's range covers everything.
	r, ok := tr.Range(h.Levels[h.L][0], h.L)
	if !ok || r.Lo != 0 || r.Hi != a.N()-1 {
		t.Fatalf("root range = %v,%v", r, ok)
	}
	// l(u) ∈ Range(x, i) iff u(i) = x — the central lookup invariant.
	for v := 0; v < a.N(); v++ {
		seq := h.Zoom(v)
		for i := 0; i <= h.L; i++ {
			for _, x := range h.Levels[i] {
				rg, ok := tr.Range(x, i)
				if !ok {
					t.Fatalf("Range(%d,%d) missing", x, i)
				}
				want := seq[i] == x
				if rg.Contains(tr.Label(v)) != want {
					t.Fatalf("Range(%d,%d)=%v contains l(%d)=%d: want %v",
						x, i, rg, v, tr.Label(v), want)
				}
			}
		}
	}
	// Out-of-range queries.
	if _, ok := tr.Range(0, -1); ok {
		t.Fatal("Range(0,-1) ok")
	}
	if _, ok := tr.Range(0, h.L+5); ok {
		t.Fatal("Range beyond top ok")
	}
}

func TestNettingTreeSiblingRangesDisjoint(t *testing.T) {
	a := geoAPSP(t, 100, 11)
	h := NewHierarchy(a, 0)
	tr := NewNettingTree(h)
	for i := 0; i <= h.L; i++ {
		type iv struct{ lo, hi int }
		var ivs []iv
		for _, x := range h.Levels[i] {
			r, _ := tr.Range(x, i)
			if r.Lo > r.Hi {
				t.Fatalf("empty range for (%d,%d): netting tree nodes always have a leaf below", x, i)
			}
			ivs = append(ivs, iv{r.Lo, r.Hi})
		}
		for j := 0; j < len(ivs); j++ {
			for k := j + 1; k < len(ivs); k++ {
				if ivs[j].lo <= ivs[k].hi && ivs[k].lo <= ivs[j].hi {
					t.Fatalf("level %d ranges overlap: %v %v", i, ivs[j], ivs[k])
				}
			}
		}
	}
}

func TestHierarchyOnUnitPath(t *testing.T) {
	g, err := graph.Path(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	h := NewHierarchy(a, 0)
	if h.Base() != 1 {
		t.Fatalf("base = %v, want 1", h.Base())
	}
	if h.TopLevel() != int(math.Ceil(math.Log2(15))) {
		t.Fatalf("L = %d", h.TopLevel())
	}
}

func TestHierarchySingleNode(t *testing.T) {
	g, err := graph.NewBuilder(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	h := NewHierarchy(a, 0)
	if h.TopLevel() != 0 || len(h.Levels[0]) != 1 {
		t.Fatalf("degenerate hierarchy wrong: L=%d", h.TopLevel())
	}
	tr := NewNettingTree(h)
	if tr.Label(0) != 0 {
		t.Fatalf("label = %d", tr.Label(0))
	}
}

func TestHierarchyDeterministic(t *testing.T) {
	a := geoAPSP(t, 90, 12)
	h1 := NewHierarchy(a, 0)
	h2 := NewHierarchy(a, 0)
	for i := 0; i <= h1.L; i++ {
		if len(h1.Levels[i]) != len(h2.Levels[i]) {
			t.Fatalf("level %d sizes differ", i)
		}
		for k := range h1.Levels[i] {
			if h1.Levels[i][k] != h2.Levels[i][k] {
				t.Fatalf("level %d differs at %d", i, k)
			}
		}
	}
}

func TestNetRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		g, _, err := graph.RandomGeometric(60+rng.Intn(60), 0.25, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		a := metric.NewAPSP(g)
		r := a.Diameter() * (0.1 + rng.Float64()*0.5)
		net := Net(a, r, nil, nil)
		checkNetProperties(t, a, net, r)
	}
}
