package rnet

// Range is a closed interval [Lo, Hi] of DFS leaf labels.
type Range struct {
	Lo, Hi int
}

// Contains reports whether label l falls in the range.
func (r Range) Contains(l int) bool { return r.Lo <= l && l <= r.Hi }

// NettingTree is T({Y_i}): the tree whose nodes are the pairs (y, i) for
// y ∈ Y_i, with (y, i)'s parent being (u(i+1) of y, i+1) — the union of
// all zooming-sequence paths. Its leaves are exactly (v, 0) for v ∈ V.
//
// Labels enumerate the leaves in depth-first order (children visited in
// ascending node id). By the DFS property, the leaf labels below any
// internal node (x, i) form the contiguous interval Range(x, i), and
// l(u) ∈ Range(x, i) iff u(i) = x — the fact both routing schemes'
// lookups rest on (Section 4.1).
type NettingTree struct {
	h *Hierarchy
	// Leaf[v] = l(v), the DFS label of leaf (v, 0).
	Leaf []int
	// NodeOf[l] = v with Leaf[v] == l.
	NodeOf []int
	// ranges[i][k] is Range(Levels[i][k], i).
	ranges [][]Range
}

// NewNettingTree builds the netting tree and its DFS enumeration.
func NewNettingTree(h *Hierarchy) *NettingTree {
	n := len(h.maxLevel)
	t := &NettingTree{
		h:      h,
		Leaf:   make([]int, n),
		NodeOf: make([]int, n),
		ranges: make([][]Range, h.L+1),
	}
	for i := range t.ranges {
		t.ranges[i] = make([]Range, len(h.Levels[i]))
	}
	// children[i][k] lists, for internal node (Levels[i+1][k], i+1), the
	// ids y of its children (y, i), in ascending id order (Levels[i] is
	// not sorted by id, so sort below).
	children := make([][][]int, h.L)
	for i := 0; i < h.L; i++ {
		children[i] = make([][]int, len(h.Levels[i+1]))
		for _, y := range h.Levels[i] {
			p := int(h.zoomParent[i][y])
			k := int(h.pos[i+1][p])
			children[i][k] = append(children[i][k], y)
		}
		for k := range children[i] {
			sortInts(children[i][k])
		}
	}
	// DFS from the root (Levels[L][0], L). Recursion depth is at most
	// L+1, the number of levels.
	next := 0
	var dfs func(y, i int) Range
	dfs = func(y, i int) Range {
		if i == 0 {
			t.Leaf[y] = next
			t.NodeOf[next] = y
			next++
			r := Range{Lo: next - 1, Hi: next - 1}
			t.ranges[0][h.pos[0][y]] = r
			return r
		}
		r := Range{Lo: next, Hi: next - 1}
		for _, c := range children[i-1][h.pos[i][y]] {
			cr := dfs(c, i-1)
			r.Hi = cr.Hi
		}
		t.ranges[i][h.pos[i][y]] = r
		return r
	}
	dfs(h.Levels[h.L][0], h.L)
	return t
}

// Label returns l(v).
func (t *NettingTree) Label(v int) int { return t.Leaf[v] }

// NodeOfLabel returns the node whose label is l.
func (t *NettingTree) NodeOfLabel(l int) int { return t.NodeOf[l] }

// Range returns Range(x, i) and whether x ∈ Y_i.
func (t *NettingTree) Range(x, i int) (Range, bool) {
	if i < 0 || i > t.h.L {
		return Range{}, false
	}
	k := t.h.pos[i][x]
	if k < 0 {
		return Range{}, false
	}
	return t.ranges[i][k], true
}

func sortInts(s []int) {
	// insertion sort: child lists are tiny (bounded by the doubling
	// constant), so avoid sort.Ints allocation overhead in this hot
	// construction loop.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
