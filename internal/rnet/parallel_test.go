package rnet

import (
	"reflect"
	"runtime"
	"testing"
)

// TestHierarchyParallelEquivalence: NewHierarchy parallelizes the Net
// seed prefilter and the zoomParent scans; the resulting hierarchy must
// be bit-identical to a GOMAXPROCS=1 serial build.
func TestHierarchyParallelEquivalence(t *testing.T) {
	a := geoAPSP(t, 120, 5)
	build := func() *Hierarchy { return NewHierarchy(a, 0) }
	old := runtime.GOMAXPROCS(1)
	serial := build()
	runtime.GOMAXPROCS(8)
	parallel := build()
	runtime.GOMAXPROCS(old)
	if !reflect.DeepEqual(serial.Levels, parallel.Levels) {
		t.Fatal("parallel hierarchy has different net levels than serial build")
	}
	if !reflect.DeepEqual(serial.pos, parallel.pos) {
		t.Fatal("parallel hierarchy has different level positions than serial build")
	}
	if !reflect.DeepEqual(serial.maxLevel, parallel.maxLevel) {
		t.Fatal("parallel hierarchy has different max levels than serial build")
	}
	if !reflect.DeepEqual(serial.zoomParent, parallel.zoomParent) {
		t.Fatal("parallel hierarchy has different zoom parents than serial build")
	}
}
