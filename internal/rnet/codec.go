package rnet

import (
	"fmt"
	"math"

	"compactrouting/internal/bits"
	"compactrouting/internal/metric"
)

// EncodeHierarchy serializes the hierarchy's elected state — the level-0
// radius and the membership lists — into w. The derived lookup
// structures (positions, max levels, zoom parents) are not written:
// DecodeHierarchy re-derives them, exactly as NewHierarchyFromLevels
// does for the distributed election.
func EncodeHierarchy(w *bits.Writer, h *Hierarchy) {
	w.WriteBits(math.Float64bits(h.base), 64)
	w.WriteUvarint(uint64(len(h.Levels)))
	for _, lv := range h.Levels {
		w.WriteUvarint(uint64(len(lv)))
		for _, v := range lv {
			w.WriteUvarint(uint64(v))
		}
	}
}

// DecodeHierarchy reads a hierarchy written by EncodeHierarchy and
// re-derives the lookup structures over the given oracle. Malformed
// input (out-of-range members, empty levels, a non-singleton top) is
// rejected with an error, never a panic.
func DecodeHierarchy(r *bits.Reader, a metric.Distancer) (*Hierarchy, error) {
	bb, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	base := math.Float64frombits(bb)
	if !(base > 0) || math.IsInf(base, 0) {
		return nil, fmt.Errorf("rnet: decoded base %v out of range", base)
	}
	nl, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if nl < 1 || nl > uint64(64+a.N()) {
		return nil, fmt.Errorf("rnet: decoded %d levels out of range", nl)
	}
	n := a.N()
	levels := make([][]int, nl)
	for i := range levels {
		cnt, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if cnt < 1 || cnt > uint64(n) {
			return nil, fmt.Errorf("rnet: level %d has %d members, want 1..%d", i, cnt, n)
		}
		lv := make([]int, cnt)
		for k := range lv {
			v, err := r.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if v >= uint64(n) {
				return nil, fmt.Errorf("rnet: level %d member %d out of range", i, v)
			}
			lv[k] = int(v)
		}
		levels[i] = lv
	}
	if len(levels[nl-1]) != 1 {
		return nil, fmt.Errorf("rnet: top level has %d members, want a singleton", len(levels[nl-1]))
	}
	if len(levels[0]) != n {
		return nil, fmt.Errorf("rnet: level 0 has %d members, want all %d nodes", len(levels[0]), n)
	}
	return NewHierarchyFromLevels(a, base, levels), nil
}
