// Package rnet implements r-nets (Definition 2.1), the nested hierarchy
// of 2^i-nets {Y_i} from Section 2, zooming sequences u(i), and the
// netting tree T({Y_i}) with its DFS leaf enumeration l(u) and subtree
// ranges Range(x, i) from Section 4.1.
//
// The paper normalizes the minimum pairwise distance to 1 and assumes
// Delta is a power of two. We instead anchor level 0 at the actual
// minimum pairwise distance: level i covers radius Radius(i) =
// minPairDistance * 2^i, which is the same hierarchy up to a constant
// shift of indices.
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit seeds (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package rnet

import (
	"math"

	"compactrouting/internal/metric"
)

// Net greedily computes an r-net of candidates (all nodes if nil) seeded
// with the given existing members: every candidate ends up within
// distance r of the result, and all non-seed members are pairwise >= r
// apart (seeds are trusted to satisfy the separation already, which
// holds when they form a net of a coarser level). Candidates are
// examined in increasing node id, making the construction deterministic.
//
// The scan is center-first: a candidate is rejected iff some member y
// holds Dist(y, v) < r, so instead of probing every candidate against
// every member, each member marks its own ball once. Ball(y, r) is
// inclusive, so the strict boundary is re-checked with Dist(y, m) < r —
// a cache hit on the lazy backend, whose row is already built past m.
// Seed balls commute with the greedy (a candidate near a seed is
// rejected no matter what was accepted before it) and are prefetched in
// parallel; each acceptance then marks its own ball before the scan
// moves on, reproducing the serial greedy bit for bit while touching
// only ball-local state.
func Net(a metric.Distancer, r float64, seed, candidates []int) []int {
	n := a.N()
	out := make([]int, 0, len(seed)+8)
	out = append(out, seed...)
	if candidates == nil {
		candidates = make([]int, n)
		for i := range candidates {
			candidates[i] = i
		}
	}
	covered := make([]bool, n)
	var scratch []int
	mark := func(y int) {
		scratch = a.AppendBall(scratch[:0], y, r)
		for _, m := range scratch {
			if !covered[m] && a.Dist(y, m) < r {
				covered[m] = true
			}
		}
	}
	metric.PrefetchBalls(a, seed, r)
	for _, y := range seed {
		mark(y)
	}
	for _, v := range candidates {
		if !covered[v] {
			out = append(out, v)
			mark(v)
		}
	}
	return out
}

// Hierarchy is the nested chain Y_L ⊆ Y_{L-1} ⊆ ... ⊆ Y_0 = V of
// 2^i-nets, built top-down per Section 2: Y_L is a singleton and each
// Y_i greedily extends Y_{i+1}.
type Hierarchy struct {
	a    metric.Distancer
	base float64 // radius of level 0; Radius(i) = base * 2^i
	L    int     // top level; Levels[L] is a singleton
	// Levels[i] lists Y_i members in the order the greedy construction
	// chose them (coarser-level members first).
	Levels [][]int
	// maxLevel[v] is the highest i with v ∈ Y_i.
	maxLevel []int
	// pos[i][v] is v's index within Levels[i], or -1.
	pos [][]int32
	// zoomParent[i][v], defined for v ∈ Y_i and i < L, is v's nearest
	// node in Y_{i+1} (ties by least id): the parent of (v, i) in the
	// netting tree, and the next element after v in any zooming
	// sequence currently at (v, i).
	zoomParent [][]int32
}

// NewHierarchy builds the net hierarchy for the metric, rooting Y_L at
// the given node (the paper allows an arbitrary root).
func NewHierarchy(a metric.Distancer, root int) *Hierarchy {
	n := a.N()
	base := a.MinPairDistance()
	L := 0
	if n > 1 {
		// Need base*2^L >= eccentricity(root) so the singleton Y_L
		// covers everything. The eccentricity is the tight requirement
		// and costs one Dijkstra row on the lazy backend, where the
		// diameter would cost all n of them.
		L = int(math.Ceil(math.Log2(a.Eccentricity(root) / base)))
		if L < 0 {
			L = 0
		}
	} else {
		base = 1
	}
	h := &Hierarchy{
		a:        a,
		base:     base,
		L:        L,
		Levels:   make([][]int, L+1),
		maxLevel: make([]int, n),
	}
	h.Levels[L] = []int{root}
	for i := L - 1; i >= 0; i-- {
		h.Levels[i] = Net(a, h.Radius(i), h.Levels[i+1], nil)
	}
	h.finish()
	return h
}

// NewHierarchyFromLevels wraps externally elected net levels — the
// membership sets the distributed protocol in internal/dist builds by
// message passing — into a Hierarchy, deriving positions, max levels
// and zoom parents exactly as NewHierarchy does for its own greedy
// election. levels[i] must list Y_i's members; the chain must be nested
// with levels[len(levels)-1] a singleton and levels[0] = V, and base is
// the level-0 net radius (Radius(i) = base * 2^i). The caller vouches
// for the net properties; a hierarchy wrapped around the output of a
// correct election is indistinguishable from a NewHierarchy build.
func NewHierarchyFromLevels(a metric.Distancer, base float64, levels [][]int) *Hierarchy {
	h := &Hierarchy{
		a:        a,
		base:     base,
		L:        len(levels) - 1,
		Levels:   levels,
		maxLevel: make([]int, a.N()),
	}
	h.finish()
	return h
}

// finish derives the lookup structures (pos, maxLevel, zoomParent) from
// the Levels sets.
func (h *Hierarchy) finish() {
	n := len(h.maxLevel)
	for _, v := range h.Levels[0] {
		h.maxLevel[v] = 0
	}
	h.pos = make([][]int32, h.L+1)
	for i := 0; i <= h.L; i++ {
		h.pos[i] = make([]int32, n)
		for v := range h.pos[i] {
			h.pos[i][v] = -1
		}
		for k, v := range h.Levels[i] {
			h.pos[i][v] = int32(k)
			h.maxLevel[v] = i // levels ascend, so the last write wins
		}
	}
	h.zoomParent = make([][]int32, h.L)
	// Nearest minimizes (Dist(y, v), y) over coarse members y, and the
	// net coverage property puts the winner within Radius(i+1), so a
	// sweep of each coarse member's ball of that radius sees every
	// winner (and every tie — those sit strictly inside the inclusive
	// ball too). Minimizing (dist, id) per member over the sweep is
	// therefore bit-identical to the full scan, but touches only
	// ball-local state: the lazy backend builds |Y_{i+1}| truncated rows
	// (prefetched in parallel) instead of extending every member's row.
	bestD := make([]float64, n)
	best := make([]int32, n)
	var scratch []int
	for i := 0; i < h.L; i++ {
		h.zoomParent[i] = make([]int32, n)
		for v := range h.zoomParent[i] {
			h.zoomParent[i][v] = -1
		}
		lv := h.Levels[i]
		coarse := h.Levels[i+1]
		r := h.Radius(i + 1)
		for v := range best {
			best[v] = -1
			bestD[v] = math.Inf(1)
		}
		metric.PrefetchBalls(h.a, coarse, r)
		for _, y := range coarse {
			scratch = h.a.AppendBall(scratch[:0], y, r)
			for _, m := range scratch {
				if h.pos[i][m] < 0 {
					continue
				}
				d := h.a.Dist(y, m)
				//determinlint:allow floateq deliberate exact tie-break: must reproduce Nearest's (distance, id) minimization bit for bit
				if d < bestD[m] || (d == bestD[m] && int32(y) < best[m]) {
					bestD[m], best[m] = d, int32(y)
				}
			}
		}
		for _, v := range lv {
			if best[v] < 0 {
				// Externally elected levels (NewHierarchyFromLevels) may
				// be looser than the greedy's coverage radius; fall back
				// to the full scan for any member the sweep missed.
				p, _ := h.a.Nearest(v, coarse)
				best[v] = int32(p)
			}
			h.zoomParent[i][v] = best[v]
		}
	}
}

// Base returns the radius of level 0 (the minimum pairwise distance).
func (h *Hierarchy) Base() float64 { return h.base }

// TopLevel returns L, the index of the singleton top level. The paper's
// log Delta corresponds to L.
func (h *Hierarchy) TopLevel() int { return h.L }

// Radius returns the net radius of level i, base * 2^i.
func (h *Hierarchy) Radius(i int) float64 {
	return h.base * math.Pow(2, float64(i))
}

// InLevel reports whether v ∈ Y_i.
func (h *Hierarchy) InLevel(v, i int) bool {
	return i >= 0 && i <= h.L && h.pos[i][v] >= 0
}

// MaxLevel returns the highest level containing v.
func (h *Hierarchy) MaxLevel(v int) int { return h.maxLevel[v] }

// PosInLevel returns v's index within Levels[i], or -1.
func (h *Hierarchy) PosInLevel(v, i int) int { return int(h.pos[i][v]) }

// ZoomStep returns u(i+1) given that x = u(i) ∈ Y_i: the nearest node to
// x in Y_{i+1}, ties broken by least id. It panics if x ∉ Y_i or i >= L,
// which would indicate a scheme bug rather than bad input.
func (h *Hierarchy) ZoomStep(x, i int) int {
	if i >= h.L || h.pos[i][x] < 0 {
		panic("rnet: ZoomStep outside hierarchy")
	}
	return int(h.zoomParent[i][x])
}

// Zoom returns the full zooming sequence u(0..L) of u.
func (h *Hierarchy) Zoom(u int) []int {
	seq := make([]int, h.L+1)
	seq[0] = u
	for i := 0; i < h.L; i++ {
		seq[i+1] = h.ZoomStep(seq[i], i)
	}
	return seq
}

// Ring returns X_i(u) = B_u(Radius(i)/eps) ∩ Y_i, in increasing distance
// from u (Section 4.1).
func (h *Hierarchy) Ring(u, i int, eps float64) []int {
	ball := h.a.Ball(u, h.Radius(i)/eps)
	ring := make([]int, 0, 8)
	for _, v := range ball {
		if h.pos[i][v] >= 0 {
			ring = append(ring, v)
		}
	}
	return ring
}
