package rnet

import (
	"bytes"
	"testing"

	"compactrouting/internal/bits"
)

// TestHierarchyCodecRoundTrip pins the hierarchy codec: the elected
// state must survive Encode → Decode → Encode bit for bit, and the
// re-derived lookups must agree with the original's.
func TestHierarchyCodecRoundTrip(t *testing.T) {
	a := geoAPSP(t, 100, 5)
	h := NewHierarchy(a, 0)
	var w bits.Writer
	EncodeHierarchy(&w, h)
	r := bits.NewReader(w.Bytes(), w.Len())
	h2, err := DecodeHierarchy(r, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bits left after decode", r.Remaining())
	}
	var w2 bits.Writer
	EncodeHierarchy(&w2, h2)
	if w2.Len() != w.Len() || !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatalf("re-encode differs: %d bits vs %d", w2.Len(), w.Len())
	}
	if h2.TopLevel() != h.TopLevel() {
		t.Fatalf("restored top level %d, want %d", h2.TopLevel(), h.TopLevel())
	}
	for v := 0; v < a.N(); v++ {
		if h2.MaxLevel(v) != h.MaxLevel(v) {
			t.Fatalf("node %d: restored max level %d, want %d", v, h2.MaxLevel(v), h.MaxLevel(v))
		}
	}
}

// TestDecodeHierarchyRejectsGarbage checks that a truncated stream
// errors instead of panicking.
func TestDecodeHierarchyRejectsGarbage(t *testing.T) {
	a := geoAPSP(t, 30, 6)
	r := bits.NewReader([]byte{0xff, 0xff}, 16)
	if _, err := DecodeHierarchy(r, a); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
}
