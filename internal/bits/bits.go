// Package bits provides bit-granular encoding primitives used to account
// for the exact serialized size, in bits, of routing tables, labels, and
// packet headers.
//
// Compact-routing results are stated in bits of storage per node and bits
// per packet header. To keep those claims honest, every table and header
// in this repository is serializable through a Writer and readable back
// through a Reader; the experiments report Writer.Len() values rather
// than Go in-memory sizes.
package bits

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrOutOfData is returned by Reader methods when the underlying stream
// has fewer bits remaining than the caller requested.
var ErrOutOfData = errors.New("bits: read past end of stream")

// Writer accumulates a bit stream. The zero value is an empty writer
// ready for use.
type Writer struct {
	buf  []byte
	nbit int // total bits written
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the accumulated stream padded with zero bits to a byte
// boundary. The returned slice aliases the writer's internal buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[w.nbit/8] |= 1 << uint(7-w.nbit%8)
	}
	w.nbit++
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bits: WriteBits width %d out of range", n))
	}
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(v>>uint(i)&1 == 1)
	}
}

// WriteUvarint appends v using a 7-bit-group varint (8 bits per group,
// continuation bit first). It always writes a multiple of 8 bits.
func (w *Writer) WriteUvarint(v uint64) {
	for v >= 0x80 {
		w.WriteBits(1, 1)
		w.WriteBits(v&0x7f, 7)
		v >>= 7
	}
	w.WriteBits(0, 1)
	w.WriteBits(v, 7)
}

// WriteGamma appends v >= 1 in Elias gamma code: floor(log2 v) zero bits,
// then the binary representation of v (which starts with a 1 bit).
// Gamma coding uses 2*floor(log2 v)+1 bits; it is the code used for
// light-edge port numbers in tree-routing labels, where the sum of code
// lengths telescopes.
func (w *Writer) WriteGamma(v uint64) {
	if v == 0 {
		panic("bits: WriteGamma requires v >= 1")
	}
	n := bits.Len64(v) // position of the highest set bit, 1-based
	for i := 0; i < n-1; i++ {
		w.WriteBit(false)
	}
	w.WriteBits(v, n)
}

// Reader consumes a bit stream produced by Writer.
type Reader struct {
	buf  []byte
	pos  int // next bit to read
	nbit int // total valid bits
}

// NewReader returns a Reader over the first nbit bits of buf.
func NewReader(buf []byte, nbit int) *Reader {
	return &Reader{buf: buf, nbit: nbit}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// ReadBit consumes and returns one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.nbit {
		return false, ErrOutOfData
	}
	b := r.buf[r.pos/8]>>uint(7-r.pos%8)&1 == 1
	r.pos++
	return b, nil
}

// ReadBits consumes n bits and returns them as the low bits of a uint64,
// most significant first. n must be in [0, 64].
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bits: ReadBits width %d out of range", n)
	}
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v, nil
}

// ReadUvarint consumes a varint written by WriteUvarint.
func (r *Reader) ReadUvarint() (uint64, error) {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		if shift > 63 {
			return 0, errors.New("bits: uvarint overflows uint64")
		}
		cont, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		grp, err := r.ReadBits(7)
		if err != nil {
			return 0, err
		}
		v |= grp << shift
		if !cont {
			return v, nil
		}
	}
}

// ReadGamma consumes an Elias gamma code written by WriteGamma.
func (r *Reader) ReadGamma() (uint64, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b {
			break
		}
		zeros++
		if zeros > 63 {
			return 0, errors.New("bits: gamma code too long")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<uint(zeros) | rest, nil
}

// UintBits returns the number of bits needed to store values in [0, n),
// i.e. ceil(log2 n), with a minimum of 0 for n <= 1. It is the width used
// for fixed-size node-id fields given an n-node graph.
func UintBits(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GammaLen returns the length in bits of the Elias gamma code for v >= 1.
func GammaLen(v uint64) int {
	return 2*bits.Len64(v) - 1
}

// UvarintLen returns the length in bits of the varint code for v.
func UvarintLen(v uint64) int {
	n := 8
	for v >= 0x80 {
		v >>= 7
		n += 8
	}
	return n
}
