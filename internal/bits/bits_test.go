package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBit(t *testing.T) {
	var w Writer
	pattern := []bool{true, false, true, true, false, false, true, false, true}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %v, want %v", i, got, want)
		}
	}
	if _, err := r.ReadBit(); err != ErrOutOfData {
		t.Fatalf("read past end: err = %v, want ErrOutOfData", err)
	}
}

func TestWriteReadBits(t *testing.T) {
	cases := []struct {
		v uint64
		n int
	}{
		{0, 0}, {0, 1}, {1, 1}, {5, 3}, {255, 8}, {256, 9},
		{1<<64 - 1, 64}, {1 << 63, 64}, {0xdeadbeef, 32},
	}
	var w Writer
	for _, c := range cases {
		w.WriteBits(c.v, c.n)
	}
	r := NewReader(w.Bytes(), w.Len())
	for _, c := range cases {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatalf("ReadBits(%d): %v", c.n, err)
		}
		if got != c.v {
			t.Fatalf("ReadBits(%d) = %d, want %d", c.n, got, c.v)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestWriteBitsPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBits(_, 65) did not panic")
		}
	}()
	var w Writer
	w.WriteBits(0, 65)
}

func TestUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		var w Writer
		w.WriteUvarint(v)
		if w.Len() != UvarintLen(v) {
			return false
		}
		r := NewReader(w.Bytes(), w.Len())
		got, err := r.ReadUvarint()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGammaRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		if v == 0 {
			v = 1
		}
		var w Writer
		w.WriteGamma(v)
		if w.Len() != GammaLen(v) {
			return false
		}
		r := NewReader(w.Bytes(), w.Len())
		got, err := r.ReadGamma()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGammaKnownCodes(t *testing.T) {
	// gamma(1) = "1", gamma(2) = "010", gamma(3) = "011", gamma(4) = "00100".
	lens := map[uint64]int{1: 1, 2: 3, 3: 3, 4: 5, 7: 5, 8: 7}
	for v, want := range lens {
		if got := GammaLen(v); got != want {
			t.Errorf("GammaLen(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestGammaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteGamma(0) did not panic")
		}
	}()
	var w Writer
	w.WriteGamma(0)
}

func TestMixedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type op struct {
		kind int
		v    uint64
		n    int
	}
	ops := make([]op, 500)
	var w Writer
	for i := range ops {
		o := op{kind: rng.Intn(4)}
		switch o.kind {
		case 0:
			o.v = uint64(rng.Intn(2))
			w.WriteBit(o.v == 1)
		case 1:
			o.n = rng.Intn(65)
			o.v = rng.Uint64()
			if o.n < 64 {
				o.v &= 1<<uint(o.n) - 1
			}
			w.WriteBits(o.v, o.n)
		case 2:
			o.v = rng.Uint64() >> uint(rng.Intn(64))
			w.WriteUvarint(o.v)
		case 3:
			o.v = rng.Uint64()>>uint(rng.Intn(64)) | 1
			w.WriteGamma(o.v)
		}
		ops[i] = o
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, o := range ops {
		var got uint64
		var err error
		switch o.kind {
		case 0:
			var b bool
			b, err = r.ReadBit()
			if b {
				got = 1
			}
		case 1:
			got, err = r.ReadBits(o.n)
		case 2:
			got, err = r.ReadUvarint()
		case 3:
			got, err = r.ReadGamma()
		}
		if err != nil {
			t.Fatalf("op %d (kind %d): %v", i, o.kind, err)
		}
		if got != o.v {
			t.Fatalf("op %d (kind %d) = %d, want %d", i, o.kind, got, o.v)
		}
	}
}

func TestUintBits(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := UintBits(c.n); got != c.want {
			t.Errorf("UintBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestReaderTruncated(t *testing.T) {
	var w Writer
	w.WriteUvarint(1 << 40)
	r := NewReader(w.Bytes(), w.Len()-3)
	if _, err := r.ReadUvarint(); err == nil {
		t.Fatal("truncated uvarint read succeeded")
	}
	var w2 Writer
	w2.WriteGamma(1 << 30)
	r2 := NewReader(w2.Bytes(), 5)
	if _, err := r2.ReadGamma(); err == nil {
		t.Fatal("truncated gamma read succeeded")
	}
}
