package bits

// Reset truncates the writer to empty, retaining the underlying buffer
// so hot encode loops can reuse one Writer without allocating.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Reset repoints the reader at the first nbit bits of buf, so hot
// decode loops can reuse one Reader without allocating.
func (r *Reader) Reset(buf []byte, nbit int) {
	r.buf = buf
	r.pos = 0
	r.nbit = nbit
}
