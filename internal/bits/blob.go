package bits

import "fmt"

// WriteBlob appends a length-prefixed sub-stream: a uvarint bit count
// followed by the first nbit bits of buf. It lets independently encoded
// tables (e.g. the per-node blobs of labeled.EncodeTable) be embedded
// verbatim in an outer stream and recovered bit-exactly.
func (w *Writer) WriteBlob(buf []byte, nbit int) {
	if nbit < 0 || (nbit+7)/8 > len(buf) {
		panic(fmt.Sprintf("bits: WriteBlob of %d bits over %d bytes", nbit, len(buf)))
	}
	w.WriteUvarint(uint64(nbit))
	full := nbit / 8
	for k := 0; k < full; k++ {
		w.WriteBits(uint64(buf[k]), 8)
	}
	if rem := nbit % 8; rem > 0 {
		w.WriteBits(uint64(buf[full]>>uint(8-rem)), rem)
	}
}

// ReadBlob reads a sub-stream written by WriteBlob, returning the
// payload bytes (zero-padded to a byte boundary) and its exact bit
// length. The declared length is checked against the remaining stream
// before allocating.
func (r *Reader) ReadBlob() ([]byte, int, error) {
	nbit, err := r.ReadUvarint()
	if err != nil {
		return nil, 0, err
	}
	if nbit > uint64(r.Remaining()) {
		return nil, 0, fmt.Errorf("bits: blob of %d bits exceeds stream", nbit)
	}
	n := int(nbit)
	buf := make([]byte, (n+7)/8)
	full := n / 8
	for k := 0; k < full; k++ {
		b, err := r.ReadBits(8)
		if err != nil {
			return nil, 0, err
		}
		buf[k] = byte(b)
	}
	if rem := n % 8; rem > 0 {
		b, err := r.ReadBits(rem)
		if err != nil {
			return nil, 0, err
		}
		buf[full] = byte(b << uint(8-rem))
	}
	return buf, n, nil
}
