package dist

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"compactrouting/internal/bits"
	"compactrouting/internal/treeroute"
)

// sampleMsgs is one representative message per wire kind, exercising
// every field the codec serializes (including non-finite floats, which
// round-trip as raw bit patterns).
func sampleMsgs() []*Msg {
	return []*Msg{
		{Kind: KindDist, Dist: 3.25},
		{Kind: KindDist, Dist: math.Inf(1)},
		{Kind: KindDVec, DVec: []DistEntry{{Target: 0, Dist: 0}, {Target: 300, Dist: 1.5e-3}}},
		{Kind: KindChild},
		{Kind: KindSize, Count: 1 << 40},
		{Kind: KindAssign, A: 17, B: 90, Light: []treeroute.LightEntry{{ParentIn: 17, Child: 23}}},
		{Kind: KindAgg, Dist: 0.125, Aux: 77.5, Count: 64},
		{Kind: KindParams, Level: 9, Aux: 0.03125, Count: 1024},
		{Kind: KindDecide, Level: 4, Decides: []DecideEntry{{Node: 5, Accept: true}, {Node: 1000, Accept: false}}},
		{Kind: KindRange, Ranges: []RangeEntry{{Level: 2, Node: 7, Lo: 12, Hi: 40}}},
		{Kind: KindVChild, Level: 3, Src: 11, Dst: 200},
		{Kind: KindVCount, Level: 3, Src: 11, Dst: 200, Count: 99},
		{Kind: KindVAssign, Level: 2, Src: 11, Dst: 200, A: 6, B: 31},
	}
}

// TestMsgCodecRoundTrip pins the codec contract the engine's accounting
// rests on: Encode emits exactly Bits() bits for every kind, and the
// encoding round-trips byte-identically.
func TestMsgCodecRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		var w bits.Writer
		m.Encode(&w)
		if w.Len() != m.Bits() {
			t.Fatalf("kind %d: encoded %d bits, Bits() promises %d", m.Kind, w.Len(), m.Bits())
		}
		got, err := DecodeMsg(bits.NewReader(w.Bytes(), w.Len()))
		if err != nil {
			t.Fatalf("kind %d: decode: %v", m.Kind, err)
		}
		var w2 bits.Writer
		got.Encode(&w2)
		if w2.Len() != w.Len() || !bytes.Equal(w2.Bytes(), w.Bytes()) {
			t.Fatalf("kind %d: re-encode differs (%d vs %d bits)", m.Kind, w2.Len(), w.Len())
		}
	}
}

// FuzzDecodeMsg: arbitrary bytes either fail to decode cleanly or yield
// a message whose encoding is a fixpoint — encode(decode(encode(m)))
// is byte-identical to encode(m) and exactly Bits() wide. Byte-level
// comparison (rather than struct equality) keeps NaN payloads honest.
// Must never panic or over-allocate on hostile input.
func FuzzDecodeMsg(f *testing.F) {
	for _, m := range sampleMsgs() {
		var w bits.Writer
		m.Encode(&w)
		f.Add(append([]byte(nil), w.Bytes()...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMsg(bits.NewReader(data, 8*len(data)))
		if err != nil {
			return
		}
		var w1 bits.Writer
		m.Encode(&w1)
		if w1.Len() != m.Bits() {
			t.Fatalf("decoded kind %d encodes to %d bits, Bits() promises %d", m.Kind, w1.Len(), m.Bits())
		}
		m2, err := DecodeMsg(bits.NewReader(w1.Bytes(), w1.Len()))
		if err != nil {
			t.Fatalf("re-decode of kind %d: %v", m.Kind, err)
		}
		var w2 bits.Writer
		m2.Encode(&w2)
		if w2.Len() != w1.Len() || !bytes.Equal(w2.Bytes(), w1.Bytes()) {
			t.Fatalf("kind %d: canonical encoding is not a fixpoint", m.Kind)
		}
	})
}

// TestRegenFuzzCorpus rewrites the checked-in seed corpus from the
// sample messages. Regenerate with:
//
//	REGEN_FUZZ_CORPUS=1 go test ./internal/... -run TestRegenFuzzCorpus
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz seed corpora")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeMsg")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, m := range sampleMsgs() {
		var w bits.Writer
		m.Encode(&w)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", w.Bytes())
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%03d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
