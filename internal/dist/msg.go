package dist

import (
	"fmt"
	"math"

	"compactrouting/internal/bits"
	"compactrouting/internal/treeroute"
)

// Message kinds of the construction wire format. Every protocol message
// is one Msg, encoded by Encode and decoded by DecodeMsg; which fields
// are on the wire depends on the kind.
const (
	// KindDist announces the sender's current distance to the tree root
	// (single-source distance election in BuildTree).
	KindDist uint8 = iota + 1
	// KindDVec batches distance-vector announcements: (target, distance)
	// pairs the sender improved since its last flush (BuildSimple).
	KindDVec
	// KindChild tells the receiver the sender chose it as tree parent.
	KindChild
	// KindSize carries a subtree size up one tree edge (convergecast).
	KindSize
	// KindAssign pushes a DFS interval and label down one tree edge.
	KindAssign
	// KindAgg carries (min nonzero distance, eccentricity, node count)
	// up the shortest-path tree toward the hierarchy root.
	KindAgg
	// KindParams broadcasts the hierarchy parameters (base radius, top
	// level, node count) down the shortest-path tree.
	KindParams
	// KindDecide batches net-election decisions (node, accept/reject)
	// for one level, flooded within the level's scope.
	KindDecide
	// KindRange batches netting-tree ranges (level, node, lo, hi),
	// flooded within each entry's ring radius.
	KindRange
	// KindVChild announces a netting-tree child edge to the zoom parent
	// (unicast, forwarded hop by hop along shortest paths).
	KindVChild
	// KindVCount carries a netting-tree leaf count to the zoom parent
	// (unicast).
	KindVCount
	// KindVAssign pushes a netting-tree leaf-label range down to a child
	// (unicast).
	KindVAssign

	kindEnd
)

// kindBits is the width of the kind field; all kinds fit in 4 bits.
const kindBits = 4

// DistEntry is one batched distance announcement.
type DistEntry struct {
	Target int32
	Dist   float64
}

// DecideEntry is one batched net-election decision.
type DecideEntry struct {
	Node   int32
	Accept bool
}

// RangeEntry is one batched netting-tree range announcement.
type RangeEntry struct {
	Level, Node, Lo, Hi int32
}

// Msg is a construction message. It is a tagged union: Kind selects
// which of the remaining fields travel on the wire (see Encode). All id
// and level fields must be non-negative; counts fit uint64.
type Msg struct {
	Kind  uint8
	Level int32   // net level (KindDecide, KindParams, KindV*)
	Src   int32   // unicast origin (KindV*)
	Dst   int32   // unicast destination (KindV*)
	A, B  int32   // interval bounds (KindAssign, KindVAssign)
	Count uint64  // subtree size / node count / leaf count
	Dist  float64 // distance payload (KindDist, KindAgg min)
	Aux   float64 // second float payload (KindAgg max, KindParams base)

	Light   []treeroute.LightEntry // label light list (KindAssign)
	DVec    []DistEntry            // KindDVec batch
	Decides []DecideEntry          // KindDecide batch
	Ranges  []RangeEntry           // KindRange batch
}

// Encode appends the message to w. The bit cost is exactly Bits().
func (m *Msg) Encode(w *bits.Writer) {
	w.WriteBits(uint64(m.Kind), kindBits)
	switch m.Kind {
	case KindDist:
		w.WriteBits(math.Float64bits(m.Dist), 64)
	case KindDVec:
		w.WriteUvarint(uint64(len(m.DVec)))
		for _, e := range m.DVec {
			w.WriteUvarint(uint64(e.Target))
			w.WriteBits(math.Float64bits(e.Dist), 64)
		}
	case KindChild:
		// kind only
	case KindSize:
		w.WriteUvarint(m.Count)
	case KindAssign:
		w.WriteUvarint(uint64(m.A))
		w.WriteUvarint(uint64(m.B))
		treeroute.Label{In: m.A, Light: m.Light}.Encode(w)
	case KindAgg:
		w.WriteBits(math.Float64bits(m.Dist), 64)
		w.WriteBits(math.Float64bits(m.Aux), 64)
		w.WriteUvarint(m.Count)
	case KindParams:
		w.WriteUvarint(uint64(m.Level))
		w.WriteBits(math.Float64bits(m.Aux), 64)
		w.WriteUvarint(m.Count)
	case KindDecide:
		w.WriteUvarint(uint64(m.Level))
		w.WriteUvarint(uint64(len(m.Decides)))
		for _, e := range m.Decides {
			w.WriteUvarint(uint64(e.Node))
			w.WriteBit(e.Accept)
		}
	case KindRange:
		w.WriteUvarint(uint64(len(m.Ranges)))
		for _, e := range m.Ranges {
			w.WriteUvarint(uint64(e.Level))
			w.WriteUvarint(uint64(e.Node))
			w.WriteUvarint(uint64(e.Lo))
			w.WriteUvarint(uint64(e.Hi))
		}
	case KindVChild:
		m.encodeVHeader(w)
	case KindVCount:
		m.encodeVHeader(w)
		w.WriteUvarint(m.Count)
	case KindVAssign:
		m.encodeVHeader(w)
		w.WriteUvarint(uint64(m.A))
		w.WriteUvarint(uint64(m.B))
	default:
		panic(fmt.Sprintf("dist: encode of unknown kind %d", m.Kind))
	}
}

func (m *Msg) encodeVHeader(w *bits.Writer) {
	w.WriteUvarint(uint64(m.Level))
	w.WriteUvarint(uint64(m.Src))
	w.WriteUvarint(uint64(m.Dst))
}

// Bits returns the exact encoded size of the message — the unit the
// engine's counters account, mirroring Encode field by field the way
// labeled.TableBits mirrors EncodeTable.
func (m *Msg) Bits() int {
	n := kindBits
	switch m.Kind {
	case KindDist:
		n += 64
	case KindDVec:
		n += bits.UvarintLen(uint64(len(m.DVec)))
		for _, e := range m.DVec {
			n += bits.UvarintLen(uint64(e.Target)) + 64
		}
	case KindChild:
	case KindSize:
		n += bits.UvarintLen(m.Count)
	case KindAssign:
		n += bits.UvarintLen(uint64(m.A))
		n += bits.UvarintLen(uint64(m.B))
		n += treeroute.Label{In: m.A, Light: m.Light}.Bits()
	case KindAgg:
		n += 128 + bits.UvarintLen(m.Count)
	case KindParams:
		n += bits.UvarintLen(uint64(m.Level)) + 64 + bits.UvarintLen(m.Count)
	case KindDecide:
		n += bits.UvarintLen(uint64(m.Level))
		n += bits.UvarintLen(uint64(len(m.Decides)))
		for _, e := range m.Decides {
			n += bits.UvarintLen(uint64(e.Node)) + 1
		}
	case KindRange:
		n += bits.UvarintLen(uint64(len(m.Ranges)))
		for _, e := range m.Ranges {
			n += bits.UvarintLen(uint64(e.Level)) + bits.UvarintLen(uint64(e.Node))
			n += bits.UvarintLen(uint64(e.Lo)) + bits.UvarintLen(uint64(e.Hi))
		}
	case KindVChild:
		n += m.vHeaderBits()
	case KindVCount:
		n += m.vHeaderBits() + bits.UvarintLen(m.Count)
	case KindVAssign:
		n += m.vHeaderBits() + bits.UvarintLen(uint64(m.A)) + bits.UvarintLen(uint64(m.B))
	default:
		panic(fmt.Sprintf("dist: size of unknown kind %d", m.Kind))
	}
	return n
}

func (m *Msg) vHeaderBits() int {
	return bits.UvarintLen(uint64(m.Level)) + bits.UvarintLen(uint64(m.Src)) + bits.UvarintLen(uint64(m.Dst))
}

// readID reads a uvarint that must fit a non-negative int32 (a node id,
// level or label).
func readID(r *bits.Reader) (int32, error) {
	v, err := r.ReadUvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("dist: id field %d overflows int32", v)
	}
	return int32(v), nil
}

func readFloat(r *bits.Reader) (float64, error) {
	v, err := r.ReadBits(64)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(v), nil
}

// DecodeMsg reads one message from r. It validates the kind tag and
// bounds every batched count against the remaining bits before
// allocating, so corrupt streams (the fuzz target feeds arbitrary
// bytes) cannot force large allocations.
func DecodeMsg(r *bits.Reader) (*Msg, error) {
	kind, err := r.ReadBits(kindBits)
	if err != nil {
		return nil, err
	}
	m := &Msg{Kind: uint8(kind)}
	if m.Kind == 0 || m.Kind >= kindEnd {
		return nil, fmt.Errorf("dist: unknown message kind %d", kind)
	}
	switch m.Kind {
	case KindDist:
		if m.Dist, err = readFloat(r); err != nil {
			return nil, err
		}
	case KindDVec:
		cnt, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		// A distance entry costs at least 8+64 bits.
		if cnt*72 > uint64(r.Remaining()) {
			return nil, fmt.Errorf("dist: dvec count %d exceeds stream", cnt)
		}
		m.DVec = make([]DistEntry, cnt)
		for i := range m.DVec {
			if m.DVec[i].Target, err = readID(r); err != nil {
				return nil, err
			}
			if m.DVec[i].Dist, err = readFloat(r); err != nil {
				return nil, err
			}
		}
	case KindChild:
	case KindSize:
		if m.Count, err = r.ReadUvarint(); err != nil {
			return nil, err
		}
	case KindAssign:
		if m.A, err = readID(r); err != nil {
			return nil, err
		}
		if m.B, err = readID(r); err != nil {
			return nil, err
		}
		lbl, err := treeroute.DecodeLabel(r)
		if err != nil {
			return nil, err
		}
		if lbl.In != m.A {
			return nil, fmt.Errorf("dist: assign label In %d != interval %d", lbl.In, m.A)
		}
		m.Light = lbl.Light
	case KindAgg:
		if m.Dist, err = readFloat(r); err != nil {
			return nil, err
		}
		if m.Aux, err = readFloat(r); err != nil {
			return nil, err
		}
		if m.Count, err = r.ReadUvarint(); err != nil {
			return nil, err
		}
	case KindParams:
		if m.Level, err = readID(r); err != nil {
			return nil, err
		}
		if m.Aux, err = readFloat(r); err != nil {
			return nil, err
		}
		if m.Count, err = r.ReadUvarint(); err != nil {
			return nil, err
		}
	case KindDecide:
		if m.Level, err = readID(r); err != nil {
			return nil, err
		}
		cnt, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		// A decision costs at least 8+1 bits.
		if cnt*9 > uint64(r.Remaining()) {
			return nil, fmt.Errorf("dist: decide count %d exceeds stream", cnt)
		}
		m.Decides = make([]DecideEntry, cnt)
		for i := range m.Decides {
			if m.Decides[i].Node, err = readID(r); err != nil {
				return nil, err
			}
			if m.Decides[i].Accept, err = r.ReadBit(); err != nil {
				return nil, err
			}
		}
	case KindRange:
		cnt, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		// A range entry costs at least four 1-group uvarints.
		if cnt*32 > uint64(r.Remaining()) {
			return nil, fmt.Errorf("dist: range count %d exceeds stream", cnt)
		}
		m.Ranges = make([]RangeEntry, cnt)
		for i := range m.Ranges {
			e := &m.Ranges[i]
			for _, f := range []*int32{&e.Level, &e.Node, &e.Lo, &e.Hi} {
				if *f, err = readID(r); err != nil {
					return nil, err
				}
			}
		}
	case KindVChild:
		if err := m.decodeVHeader(r); err != nil {
			return nil, err
		}
	case KindVCount:
		if err := m.decodeVHeader(r); err != nil {
			return nil, err
		}
		if m.Count, err = r.ReadUvarint(); err != nil {
			return nil, err
		}
	case KindVAssign:
		if err := m.decodeVHeader(r); err != nil {
			return nil, err
		}
		if m.A, err = readID(r); err != nil {
			return nil, err
		}
		if m.B, err = readID(r); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *Msg) decodeVHeader(r *bits.Reader) error {
	var err error
	if m.Level, err = readID(r); err != nil {
		return err
	}
	if m.Src, err = readID(r); err != nil {
		return err
	}
	m.Dst, err = readID(r)
	return err
}
