package dist

import (
	"fmt"
	"math"
	"sort"

	"compactrouting/internal/bits"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/par"
)

// simpleRingFactor mirrors labeled's default ring radius multiplier:
// rings have radius simpleRingFactor * Radius(i) / eps. The protocol
// pins the oracle's default because the two builds are asserted
// byte-identical.
const simpleRingFactor = 2.0

// SimpleResult is the output of BuildSimple: per-node encoded tables
// (byte-identical to labeled.NewSimple + EncodeTable on the same graph
// and eps), the elected hierarchy, and the construction cost.
type SimpleResult struct {
	N          int
	Eps        float64
	RingFactor float64
	// Base is the level-0 net radius the aggregation derived (the
	// minimum pairwise distance).
	Base float64
	// TopLevel is L, the index of the singleton top net level.
	TopLevel int
	// Labels[v] is v's netting-tree DFS leaf label.
	Labels []int32
	// Levels[i] lists the elected Y_i members in ascending id (the
	// oracle's Levels hold the same sets in greedy-acceptance order).
	Levels [][]int
	// Tables[v] is v's encoded routing table (TableBits[v] valid bits),
	// consumable by labeled.DecodeSimple.
	Tables    [][]byte
	TableBits []int
	Counters  Counters
}

// ringRec is one collected ring entry before final table assembly.
type ringRec struct {
	x, lo, hi int32
}

// vkid is one external netting-tree child with its reported leaf count
// (-1 until the count arrives).
type vkid struct {
	id  int32
	cnt int64
}

// simpleNode is one node's protocol state for BuildSimple.
type simpleNode struct {
	// Distance vector (phase 0): full rows, built by exchange.
	distRow []float64
	nhRow   []int32
	queued  []bool
	queue   []int32

	// Shortest-path tree toward node 0 (phases 1-3).
	sptKids []int32
	aggGot  int
	aggMin  float64
	aggMax  float64
	aggCnt  uint64

	// Hierarchy parameters, learned in phase 3.
	haveParams bool
	base       float64
	topL       int
	n          int

	// Membership knowledge accumulated from accept floods.
	joinKnown []int16 // per node: its join level, or -1
	memb      []int32 // known members in discovery order
	selfJoin  int16

	// Election scratch, reset per level.
	decided  bool
	pendBit  []uint64
	pendCnt  int
	seen     []uint64
	relayDec []DecideEntry

	// Virtual netting-tree state for the chain (v, 0..selfJoin).
	zpTop        int32
	vkids        [][]vkid
	vgot         []int
	vcnt         []int64
	vcur         int
	rngLo, rngHi []int32

	// Range flood state and collected rings.
	seenRng  [][]uint64
	rings    [][]ringRec
	relayRng []RangeEntry

	label int32
}

// simpleProto builds the labeled Simple scheme in-network. Phases
// (L = top level, known to all nodes after phase 3):
//
//	0      distance-vector exchange: full distance/next-hop rows with
//	       Dijkstra's exact tie-breaks.
//	1      shortest-path-tree child announce toward node 0.
//	2      aggregation convergecast: (min pair distance, ecc(root), n).
//	3      parameter broadcast: (base, L, n) down the tree.
//	4      the root announces itself as Y_L (scoped accept flood).
//	5..4+L per-level net election, level i = L-(phase-4): the greedy
//	       by-id net election as a decision-wait protocol (see Begin).
//	5+L    netting-tree child announce to zoom parents (unicast).
//	6+L    netting-tree leaf-count convergecast (unicast).
//	7+L    leaf-label range downcast (unicast) — the DFS enumeration.
//	8+L    range floods: each member floods Range(v, i) within ring
//	       radius; receivers keep exactly their oracle ring entries.
type simpleProto struct {
	n          int
	eps        float64
	factor     float64
	maxMsgBits int
	nodes      []simpleNode
}

// radius is Hierarchy.Radius: base * 2^i, with the node's learned base.
func (st *simpleNode) radius(i int32) float64 {
	return st.base * math.Pow(2, float64(i))
}

// ringRadius mirrors the oracle's ring radius expression
// (labeled.(*Simple).ringAt) term for term.
func (p *simpleProto) ringRadius(st *simpleNode, i int32) float64 {
	return p.factor * st.radius(i) / p.eps
}

// level maps an announce/election phase to its net level.
func (st *simpleNode) level(phase int) int32 { return int32(st.topL - (phase - 4)) }

func (p *simpleProto) Done(phase int) bool {
	if phase <= 4 {
		return false
	}
	// The root's parameters are authoritative; Done runs serially
	// between phases, after the broadcast phase completed.
	return phase >= 9+p.nodes[0].topL
}

func (p *simpleProto) Begin(phase int, c *Ctx) {
	v := c.Node()
	st := &p.nodes[v]
	switch {
	case phase == 0:
		st.distRow = make([]float64, p.n)
		st.nhRow = make([]int32, p.n)
		st.queued = make([]bool, p.n)
		for u := range st.distRow {
			st.distRow[u] = math.Inf(1)
			st.nhRow[u] = -1
		}
		st.distRow[v] = 0
		st.queued[v] = true
		st.queue = append(st.queue, int32(v))
	case phase == 1:
		if v != 0 {
			c.Send(int(st.nhRow[0]), &Msg{Kind: KindChild})
		}
	case phase == 2:
		sort.Slice(st.sptKids, func(a, b int) bool { return st.sptKids[a] < st.sptKids[b] })
		st.aggMin = math.Inf(1)
		// The max aggregate carries only this node's distance from the
		// root: its convergecast max is the root's eccentricity, the
		// quantity rnet.NewHierarchy sizes L with (the tight coverage
		// requirement — the diameter would be a loose upper bound).
		st.aggMax = st.distRow[0]
		st.aggCnt = 1
		for u := 0; u < p.n; u++ {
			if u == v {
				continue
			}
			if d := st.distRow[u]; d < st.aggMin {
				st.aggMin = d
			}
		}
		if len(st.sptKids) == 0 {
			p.aggReady(c, st)
		}
	case phase == 3:
		if v == 0 {
			for _, k := range st.sptKids {
				c.Send(int(k), &Msg{Kind: KindParams, Level: int32(st.topL), Aux: st.base, Count: uint64(st.n)})
			}
		}
	case phase == 4:
		if v == 0 {
			st.decided = true
			st.selfJoin = int16(st.topL)
			p.handleDecide(c, st, int32(st.topL), 0, true)
		}
	case phase <= 4+st.topL:
		p.beginElection(c, st, st.level(phase))
	case phase == 5+st.topL:
		p.beginVChild(c, st)
	case phase == 6+st.topL:
		p.vcascade(c, st)
	case phase == 7+st.topL:
		if v == 0 {
			lv := int(st.selfJoin)
			st.rngLo[lv], st.rngHi[lv] = 0, int32(st.n)-1
			p.descend(c, st, lv)
		}
	case phase == 8+st.topL:
		p.beginRangeFlood(c, st)
	}
}

// aggReady fires when v has folded all child aggregates: push the
// partial aggregate up, or derive the hierarchy parameters at the root
// exactly as rnet.NewHierarchy would (base = min pair distance,
// L = ceil(log2(ecc(root)/base))).
func (p *simpleProto) aggReady(c *Ctx, st *simpleNode) {
	if c.Node() != 0 {
		c.Send(int(st.nhRow[0]), &Msg{Kind: KindAgg, Dist: st.aggMin, Aux: st.aggMax, Count: st.aggCnt})
		return
	}
	if st.aggCnt != uint64(p.n) {
		c.Fail(fmt.Errorf("dist: aggregation counted %d of %d nodes", st.aggCnt, p.n))
		return
	}
	base, ecc := st.aggMin, st.aggMax
	topL := int(math.Ceil(math.Log2(ecc / base)))
	if topL < 1 {
		// L = 0 means ecc(root) == min distance: the hierarchy would be a
		// single level and only the root would carry a leaf label. The
		// oracle scheme is equally degenerate there; reject explicitly.
		c.Fail(fmt.Errorf("dist: degenerate hierarchy (L = %d) on %d nodes", topL, p.n))
		return
	}
	p.setParams(st, base, topL, p.n)
}

// setParams installs the learned hierarchy parameters and sizes the
// membership structures.
func (p *simpleProto) setParams(st *simpleNode, base float64, topL, n int) {
	st.haveParams = true
	st.base, st.topL, st.n = base, topL, n
	st.selfJoin = -1
	st.joinKnown = make([]int16, n)
	for i := range st.joinKnown {
		st.joinKnown[i] = -1
	}
	words := (n + 63) / 64
	st.pendBit = make([]uint64, words)
	st.seen = make([]uint64, words)
}

// beginElection opens level lv: already-members sit out; nodes within
// the level radius of a known coarser member reject immediately; the
// rest wait for every smaller-id node within the radius to decide.
// This is exactly rnet.Net's greedy-by-id scan as a message-passing
// protocol: v is accepted iff no member of Y_{lv+1} is within
// Radius(lv) and no accepted smaller-id candidate is.
func (p *simpleProto) beginElection(c *Ctx, st *simpleNode, lv int32) {
	for i := range st.seen {
		st.seen[i] = 0
		st.pendBit[i] = 0
	}
	st.pendCnt = 0
	st.decided = false
	if st.selfJoin >= 0 {
		// Already in a coarser net, hence in this level by nesting; the
		// membership was announced once at the join level.
		st.decided = true
		return
	}
	r := st.radius(lv)
	minSeed := math.Inf(1)
	for _, y := range st.memb {
		if int32(st.joinKnown[y]) >= lv+1 {
			if d := st.distRow[y]; d < minSeed {
				minSeed = d
			}
		}
	}
	if minSeed < r {
		p.decideSelf(c, st, lv, false)
		return
	}
	v := c.Node()
	for u := 0; u < v; u++ {
		if st.distRow[u] < r {
			st.pendBit[u/64] |= 1 << uint(u%64)
			st.pendCnt++
		}
	}
	if st.pendCnt == 0 {
		p.decideSelf(c, st, lv, true)
	}
}

// decideSelf records v's own election decision and floods it.
func (p *simpleProto) decideSelf(c *Ctx, st *simpleNode, lv int32, accept bool) {
	st.decided = true
	if accept {
		st.selfJoin = int16(lv)
	}
	p.handleDecide(c, st, lv, int32(c.Node()), accept)
}

// handleDecide processes one election decision (possibly v's own):
// record membership, settle v's own pending election if y was awaited,
// and queue the scoped relay. Accept floods carry to the ring radius
// (they feed seed checks at every lower level, zoom-parent searches and
// the implied membership of coarser members); reject floods only need
// to reach the origin's level-radius ball.
func (p *simpleProto) handleDecide(c *Ctx, st *simpleNode, lv, y int32, accept bool) {
	w, bit := y/64, uint64(1)<<uint(y%64)
	if st.seen[w]&bit != 0 {
		return
	}
	st.seen[w] |= bit
	if accept {
		if st.joinKnown[y] != -1 {
			c.Fail(fmt.Errorf("dist: node %d announced twice (levels %d, %d)", y, st.joinKnown[y], lv))
			return
		}
		st.joinKnown[y] = int16(lv)
		st.memb = append(st.memb, y)
		if !st.decided && st.pendBit[w]&bit != 0 {
			// A smaller-id candidate within the radius was accepted:
			// the greedy scan rejects v.
			p.decideSelf(c, st, lv, false)
		}
	} else if !st.decided && st.pendBit[w]&bit != 0 {
		st.pendBit[w] &^= bit
		st.pendCnt--
		if st.pendCnt == 0 {
			p.decideSelf(c, st, lv, true)
		}
	}
	scope := st.radius(lv)
	inScope := st.distRow[y] < scope
	if accept {
		inScope = st.distRow[y] <= p.ringRadius(st, lv)
	}
	if inScope {
		st.relayDec = append(st.relayDec, DecideEntry{Node: y, Accept: accept})
	}
}

// beginVChild announces v's top netting-tree node (v, selfJoin) to its
// zoom parent — the nearest known member of the next level up, ties by
// least id, exactly metric.Nearest's rule. Lower chain nodes (v, i<
// selfJoin) have (v, i+1) as parent: a local edge, no message.
func (p *simpleProto) beginVChild(c *Ctx, st *simpleNode) {
	if st.selfJoin < 0 {
		c.Fail(fmt.Errorf("dist: node %d never joined any level", c.Node()))
		return
	}
	lv := int(st.selfJoin)
	st.vkids = make([][]vkid, lv+1)
	st.vgot = make([]int, lv+1)
	st.vcnt = make([]int64, lv+1)
	st.rngLo = make([]int32, lv+1)
	st.rngHi = make([]int32, lv+1)
	st.zpTop = -1
	if lv == st.topL {
		return
	}
	best, bd := int32(-1), math.Inf(1)
	for _, y := range st.memb {
		if int(st.joinKnown[y]) < lv+1 {
			continue
		}
		d := st.distRow[y]
		//determinlint:allow floateq deliberate exact tie-break: zoom parents must match metric.Nearest's (distance, id) rule bit for bit
		if d < bd || (d == bd && y < best) {
			best, bd = y, d
		}
	}
	if best < 0 {
		c.Fail(fmt.Errorf("dist: node %d found no zoom parent above level %d", c.Node(), lv))
		return
	}
	st.zpTop = best
	p.unicast(c, st, &Msg{Kind: KindVChild, Level: int32(lv), Src: int32(c.Node()), Dst: best})
}

// unicast forwards m one hop along the sender's shortest path to Dst.
func (p *simpleProto) unicast(c *Ctx, st *simpleNode, m *Msg) {
	c.Send(int(st.nhRow[m.Dst]), m)
}

// vcascade folds leaf counts up v's local chain as external child
// counts arrive; once the chain top is complete, its total goes to the
// zoom parent (or is validated against n at the root).
func (p *simpleProto) vcascade(c *Ctx, st *simpleNode) {
	lv := int(st.selfJoin)
	for st.vcur <= lv {
		i := st.vcur
		if st.vgot[i] != len(st.vkids[i]) {
			return
		}
		cnt := int64(1)
		if i > 0 {
			cnt = st.vcnt[i-1]
			for _, k := range st.vkids[i] {
				cnt += k.cnt
			}
		} else if len(st.vkids[0]) != 0 {
			c.Fail(fmt.Errorf("dist: node %d has children below level 0", c.Node()))
			return
		}
		st.vcnt[i] = cnt
		st.vcur++
	}
	if lv < st.topL {
		p.unicast(c, st, &Msg{Kind: KindVCount, Level: int32(lv), Src: int32(c.Node()), Dst: st.zpTop, Count: uint64(st.vcnt[lv])})
	} else if st.vcnt[lv] != int64(st.n) {
		c.Fail(fmt.Errorf("dist: netting tree counts %d leaves of %d", st.vcnt[lv], st.n))
	}
}

// descend assigns contiguous leaf-label blocks to the children of
// (v, i) in ascending child id — the netting tree's DFS order — and
// recurses down v's own chain. At level 0 the block is v's leaf label.
func (p *simpleProto) descend(c *Ctx, st *simpleNode, i int) {
	if i == 0 {
		if st.rngLo[0] != st.rngHi[0] {
			c.Fail(fmt.Errorf("dist: node %d leaf range [%d,%d]", c.Node(), st.rngLo[0], st.rngHi[0]))
			return
		}
		st.label = st.rngLo[0]
		return
	}
	v := int32(c.Node())
	kids := make([]vkid, 0, len(st.vkids[i])+1)
	kids = append(kids, st.vkids[i]...)
	kids = append(kids, vkid{id: v, cnt: st.vcnt[i-1]})
	sort.Slice(kids, func(a, b int) bool { return kids[a].id < kids[b].id })
	cur := st.rngLo[i]
	for _, k := range kids {
		lo, hi := cur, cur+int32(k.cnt)-1
		cur = hi + 1
		if k.id == v {
			st.rngLo[i-1], st.rngHi[i-1] = lo, hi
		} else {
			p.unicast(c, st, &Msg{Kind: KindVAssign, Level: int32(i) - 1, Src: v, Dst: k.id, A: lo, B: hi})
		}
	}
	if cur != st.rngHi[i]+1 {
		c.Fail(fmt.Errorf("dist: node %d level %d blocks end at %d, range ends at %d", v, i, cur-1, st.rngHi[i]))
		return
	}
	p.descend(c, st, i-1)
}

// beginRangeFlood floods Range(v, i) for every level of v's chain. A
// node stores and relays an entry iff the origin is within its level's
// ring radius — on a shortest path every intermediate is at most as far
// from the origin as the target, so the inclusive gate loses nobody.
func (p *simpleProto) beginRangeFlood(c *Ctx, st *simpleNode) {
	words := (st.n + 63) / 64
	st.seenRng = make([][]uint64, st.topL+1)
	st.rings = make([][]ringRec, st.topL+1)
	for i := range st.seenRng {
		st.seenRng[i] = make([]uint64, words)
	}
	for i := 0; i <= int(st.selfJoin); i++ {
		p.handleRange(st, int32(i), int32(c.Node()), st.rngLo[i], st.rngHi[i])
	}
}

func (p *simpleProto) handleRange(st *simpleNode, lv, x, lo, hi int32) {
	w, bit := x/64, uint64(1)<<uint(x%64)
	if st.seenRng[lv][w]&bit != 0 {
		return
	}
	st.seenRng[lv][w] |= bit
	if st.distRow[x] <= p.ringRadius(st, lv) {
		st.rings[lv] = append(st.rings[lv], ringRec{x: x, lo: lo, hi: hi})
		st.relayRng = append(st.relayRng, RangeEntry{Level: lv, Node: x, Lo: lo, Hi: hi})
	}
}

func (p *simpleProto) Recv(phase int, c *Ctx, from int, m *Msg) {
	v := c.Node()
	st := &p.nodes[v]
	switch {
	case phase == 0 && m.Kind == KindDVec:
		w := c.EdgeWeight(from)
		for _, e := range m.DVec {
			t := e.Target
			if t < 0 || int(t) >= p.n {
				c.Fail(fmt.Errorf("dist: node %d announced distance to %d", from, t))
				return
			}
			cand := e.Dist + w
			if cand < st.distRow[t] {
				st.distRow[t] = cand
				st.nhRow[t] = int32(from)
				if !st.queued[t] {
					st.queued[t] = true
					st.queue = append(st.queue, t)
				}
				//determinlint:allow floateq deliberate exact tie-break: must match Dijkstra's equal-distance min-id parent rule bit for bit
			} else if cand == st.distRow[t] && int32(from) < st.nhRow[t] {
				st.nhRow[t] = int32(from)
			}
		}
	case phase == 1 && m.Kind == KindChild:
		st.sptKids = append(st.sptKids, int32(from))
	case phase == 2 && m.Kind == KindAgg:
		if m.Dist < st.aggMin {
			st.aggMin = m.Dist
		}
		if m.Aux > st.aggMax {
			st.aggMax = m.Aux
		}
		st.aggCnt += m.Count
		st.aggGot++
		if st.aggGot == len(st.sptKids) {
			p.aggReady(c, st)
		}
	case phase == 3 && m.Kind == KindParams:
		p.setParams(st, m.Aux, int(m.Level), int(m.Count))
		for _, k := range st.sptKids {
			c.Send(int(k), m)
		}
	case phase >= 4 && phase <= 4+st.topL && m.Kind == KindDecide:
		if m.Level != st.level(phase) {
			c.Fail(fmt.Errorf("dist: node %d got level-%d decision in level-%d phase", v, m.Level, st.level(phase)))
			return
		}
		for _, e := range m.Decides {
			if e.Node < 0 || int(e.Node) >= st.n {
				c.Fail(fmt.Errorf("dist: decision for unknown node %d", e.Node))
				return
			}
			p.handleDecide(c, st, m.Level, e.Node, e.Accept)
		}
	case phase == 5+st.topL && m.Kind == KindVChild:
		if int(m.Dst) != v {
			p.unicast(c, st, m)
			return
		}
		idx := int(m.Level) + 1
		if idx < 1 || idx > int(st.selfJoin) {
			c.Fail(fmt.Errorf("dist: node %d (top level %d) got level-%d child %d", v, st.selfJoin, m.Level, m.Src))
			return
		}
		st.vkids[idx] = append(st.vkids[idx], vkid{id: m.Src, cnt: -1})
	case phase == 6+st.topL && m.Kind == KindVCount:
		if int(m.Dst) != v {
			p.unicast(c, st, m)
			return
		}
		p.recvVCount(c, st, m)
	case phase == 7+st.topL && m.Kind == KindVAssign:
		if int(m.Dst) != v {
			p.unicast(c, st, m)
			return
		}
		if int(m.Level) != int(st.selfJoin) {
			c.Fail(fmt.Errorf("dist: node %d (top level %d) assigned range at level %d", v, st.selfJoin, m.Level))
			return
		}
		st.rngLo[m.Level], st.rngHi[m.Level] = m.A, m.B
		p.descend(c, st, int(m.Level))
	case phase == 8+st.topL && m.Kind == KindRange:
		for _, e := range m.Ranges {
			if e.Level < 0 || int(e.Level) > st.topL || e.Node < 0 || int(e.Node) >= st.n {
				c.Fail(fmt.Errorf("dist: range entry (%d,%d) out of bounds", e.Level, e.Node))
				return
			}
			p.handleRange(st, e.Level, e.Node, e.Lo, e.Hi)
		}
	default:
		c.Fail(fmt.Errorf("dist: node %d got kind %d in simple phase %d", v, m.Kind, phase))
	}
}

func (p *simpleProto) recvVCount(c *Ctx, st *simpleNode, m *Msg) {
	idx := int(m.Level) + 1
	if idx < 1 || idx > int(st.selfJoin) {
		c.Fail(fmt.Errorf("dist: node %d got level-%d count", c.Node(), m.Level))
		return
	}
	for i := range st.vkids[idx] {
		if st.vkids[idx][i].id == m.Src {
			if st.vkids[idx][i].cnt != -1 {
				c.Fail(fmt.Errorf("dist: duplicate count from %d", m.Src))
				return
			}
			st.vkids[idx][i].cnt = int64(m.Count)
			st.vgot[idx]++
			p.vcascade(c, st)
			return
		}
	}
	c.Fail(fmt.Errorf("dist: count from non-child %d at node %d", m.Src, c.Node()))
}

func (p *simpleProto) Flush(phase int, c *Ctx) {
	st := &p.nodes[c.Node()]
	switch {
	case phase == 0:
		p.flushDVec(c, st)
	case phase >= 4 && st.haveParams && phase <= 4+st.topL:
		p.flushDecides(c, st, st.level(phase))
	case st.haveParams && phase == 8+st.topL:
		p.flushRanges(c, st)
	}
}

// batchOverheadBits reserves the message framing: kind, an up-to-16-bit
// count varint, and (for decides) the level varint.
const batchOverheadBits = kindBits + 16

// flushDVec drains the improved-distance queue into size-bounded DVec
// batches broadcast to every neighbor.
func (p *simpleProto) flushDVec(c *Ctx, st *simpleNode) {
	if len(st.queue) == 0 {
		return
	}
	entries := make([]DistEntry, len(st.queue))
	for i, t := range st.queue {
		entries[i] = DistEntry{Target: t, Dist: st.distRow[t]}
		st.queued[t] = false
	}
	st.queue = st.queue[:0]
	p.batched(c, len(entries),
		func(i int) int { return bits.UvarintLen(uint64(entries[i].Target)) + 64 },
		func(lo, hi int) *Msg { return &Msg{Kind: KindDVec, DVec: entries[lo:hi]} })
}

func (p *simpleProto) flushDecides(c *Ctx, st *simpleNode, lv int32) {
	if len(st.relayDec) == 0 {
		return
	}
	dec := st.relayDec
	p.batched(c, len(dec),
		func(i int) int { return bits.UvarintLen(uint64(dec[i].Node)) + 1 },
		func(lo, hi int) *Msg { return &Msg{Kind: KindDecide, Level: lv, Decides: dec[lo:hi]} })
	st.relayDec = st.relayDec[:0]
}

func (p *simpleProto) flushRanges(c *Ctx, st *simpleNode) {
	if len(st.relayRng) == 0 {
		return
	}
	rng := st.relayRng
	p.batched(c, len(rng),
		func(i int) int {
			e := rng[i]
			return bits.UvarintLen(uint64(e.Level)) + bits.UvarintLen(uint64(e.Node)) +
				bits.UvarintLen(uint64(e.Lo)) + bits.UvarintLen(uint64(e.Hi))
		},
		func(lo, hi int) *Msg { return &Msg{Kind: KindRange, Ranges: rng[lo:hi]} })
	st.relayRng = st.relayRng[:0]
}

// batched splits n entries into contiguous blocks whose encoded size
// fits the message bound and broadcasts each block to every neighbor.
// entryBits must account entry i exactly; mk builds the message for
// [lo, hi). A single oversized entry still goes out alone and trips
// Send's bound check — the bound must fit at least one entry.
func (p *simpleProto) batched(c *Ctx, n int, entryBits func(int) int, mk func(lo, hi int) *Msg) {
	send := func(lo, hi int) {
		m := mk(lo, hi)
		for _, e := range c.Neighbors() {
			c.Send(e.To, m)
		}
	}
	cur, start := batchOverheadBits, 0
	for i := 0; i < n; i++ {
		eb := entryBits(i)
		if cur+eb > p.maxMsgBits && i > start {
			send(start, i)
			start, cur = i, batchOverheadBits
		}
		cur += eb
	}
	send(start, n)
}

// BuildSimple runs the full in-network construction of the labeled
// Simple scheme with hierarchy root 0 and the default ring factor. The
// returned per-node tables are byte-identical to the oracle pipeline
// labeled.NewSimple(g, metric.NewAPSP(g), eps) + EncodeTable, and
// route through labeled.DecodeSimple.
func BuildSimple(g *graph.Graph, eps float64, cfg Config) (*SimpleResult, error) {
	if eps <= 0 || eps > 0.5 {
		return nil, fmt.Errorf("dist: eps %v out of (0, 0.5]", eps)
	}
	if g.N() < 2 {
		return nil, fmt.Errorf("dist: need at least 2 nodes, have %d", g.N())
	}
	p := &simpleProto{
		n:          g.N(),
		eps:        eps,
		factor:     simpleRingFactor,
		maxMsgBits: cfg.MaxMsgBits,
		nodes:      make([]simpleNode, g.N()),
	}
	if p.maxMsgBits <= 0 {
		p.maxMsgBits = DefaultMaxMsgBits
	}
	counters, err := Run(g, p, cfg)
	if err != nil {
		return nil, err
	}
	root := &p.nodes[0]
	res := &SimpleResult{
		N:          p.n,
		Eps:        eps,
		RingFactor: p.factor,
		Base:       root.base,
		TopLevel:   root.topL,
		Labels:     make([]int32, p.n),
		Levels:     make([][]int, root.topL+1),
		Tables:     make([][]byte, p.n),
		TableBits:  make([]int, p.n),
		Counters:   counters,
	}
	// Per-node table assembly is local work over protocol output; it
	// writes only index-owned state.
	idBits := bits.UintBits(p.n)
	par.For(p.n, func(v int) {
		st := &p.nodes[v]
		res.Labels[v] = st.label
		levels := make([][]labeled.TableEntry, st.topL+1)
		for i := range levels {
			recs := st.rings[i]
			sort.Slice(recs, func(a, b int) bool { return recs[a].x < recs[b].x })
			lv := make([]labeled.TableEntry, 0, len(recs))
			for _, r := range recs {
				next := st.nhRow[r.x]
				if next < 0 {
					next = int32(v) // own entry: the hop is never followed
				}
				lv = append(lv, labeled.TableEntry{X: r.x, Lo: r.lo, Hi: r.hi, Next: next})
			}
			levels[i] = lv
		}
		res.Tables[v], res.TableBits[v] = labeled.EncodeSimpleTable(idBits, st.label, levels)
	})
	for v := 0; v < p.n; v++ {
		for i := 0; i <= int(p.nodes[v].selfJoin); i++ {
			res.Levels[i] = append(res.Levels[i], v)
		}
	}
	return res, nil
}
