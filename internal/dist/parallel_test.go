package dist

import (
	"reflect"
	"runtime"
	"testing"
)

// TestBuildTreeParallelEquivalence: the engine runs Begin/Recv/Flush
// over the shared worker pool but delivers serially in sender-id order,
// so a build — tables, labels and every counter — must be bit-identical
// at GOMAXPROCS=1 and 8.
func TestBuildTreeParallelEquivalence(t *testing.T) {
	g := geo(t, 96, 11)
	build := func() *TreeResult {
		res, err := BuildTree(g, 0, Config{})
		if err != nil {
			t.Fatalf("BuildTree: %v", err)
		}
		return res
	}
	old := runtime.GOMAXPROCS(1)
	serial := build()
	runtime.GOMAXPROCS(8)
	parallel := build()
	runtime.GOMAXPROCS(old)
	if !reflect.DeepEqual(serial.Parent, parallel.Parent) {
		t.Fatal("parallel tree build elected different parents than serial build")
	}
	if !reflect.DeepEqual(serial.Info, parallel.Info) {
		t.Fatal("parallel tree build produced different node info than serial build")
	}
	if serial.Counters != parallel.Counters {
		t.Fatalf("parallel tree build counted differently: %+v vs %+v", parallel.Counters, serial.Counters)
	}
}

// TestBuildSimpleParallelEquivalence: same contract for the full
// distributed Simple construction, byte-level on the encoded tables.
func TestBuildSimpleParallelEquivalence(t *testing.T) {
	g := geo(t, 96, 11)
	build := func() *SimpleResult {
		res, err := BuildSimple(g, 0.25, Config{})
		if err != nil {
			t.Fatalf("BuildSimple: %v", err)
		}
		return res
	}
	old := runtime.GOMAXPROCS(1)
	serial := build()
	runtime.GOMAXPROCS(8)
	parallel := build()
	runtime.GOMAXPROCS(old)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel simple build differs from serial build")
	}
}
