package dist

import (
	"bytes"
	"reflect"
	"testing"

	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/labeled"
	"compactrouting/internal/metric"
	"compactrouting/internal/treeroute"
)

// equivEnv is one (family, seed) instance of the equivalence sweep.
type equivEnv struct {
	family string
	seed   int64
	g      *graph.Graph
}

// equivEnvs builds the sweep: nSeeds seeds across three graph families.
func equivEnvs(t *testing.T, nSeeds int) []equivEnv {
	t.Helper()
	var out []equivEnv
	for seed := int64(1); seed <= int64(nSeeds); seed++ {
		out = append(out, equivEnv{"geometric", seed, geo(t, 40, seed)})
		g, _, err := graph.GridWithHoles(6, 6, 0.25, seed)
		if err != nil {
			t.Fatalf("grid-holes seed %d: %v", seed, err)
		}
		out = append(out, equivEnv{"grid-holes", seed, g})
		g, err = graph.RandomTree(40, 4, seed)
		if err != nil {
			t.Fatalf("random-tree seed %d: %v", seed, err)
		}
		out = append(out, equivEnv{"random-tree", seed, g})
	}
	return out
}

// TestTreeEquivalence: across 10 seeds x 3 graph families, the
// distributed SPT construction reproduces the oracle pipeline
// (metric.Dijkstra parents, treeroute DFS numbering and labels) exactly.
func TestTreeEquivalence(t *testing.T) {
	for _, env := range equivEnvs(t, 10) {
		res, err := BuildTree(env.g, 0, Config{})
		if err != nil {
			t.Fatalf("%s seed %d: BuildTree: %v", env.family, env.seed, err)
		}
		spt := metric.Dijkstra(env.g, 0)
		if !reflect.DeepEqual(res.Parent, spt.Parent) {
			t.Fatalf("%s seed %d: parents differ from Dijkstra", env.family, env.seed)
		}
		oracle, err := treeroute.New(spt.Parent, 0)
		if err != nil {
			t.Fatalf("%s seed %d: oracle tree: %v", env.family, env.seed, err)
		}
		for v := 0; v < env.g.N(); v++ {
			want, _ := oracle.Info(v)
			if !reflect.DeepEqual(res.Info[v], want) {
				t.Fatalf("%s seed %d node %d: info %+v != oracle %+v",
					env.family, env.seed, v, res.Info[v], want)
			}
		}
	}
}

// TestSimpleEquivalence: across the same sweep, the in-network Simple
// construction emits tables byte-identical to the oracle compiler's —
// the same hierarchy election, netting-tree enumeration, ring contents
// and encoding, with no tolerance.
func TestSimpleEquivalence(t *testing.T) {
	for _, env := range equivEnvs(t, 10) {
		res, err := BuildSimple(env.g, 0.25, Config{})
		if err != nil {
			t.Fatalf("%s seed %d: BuildSimple: %v", env.family, env.seed, err)
		}
		a := metric.NewAPSP(env.g)
		oracle, err := labeled.NewSimple(env.g, a, 0.25)
		if err != nil {
			t.Fatalf("%s seed %d: oracle: %v", env.family, env.seed, err)
		}
		if res.TopLevel != oracle.MaxLevel() || res.Base != oracle.Hierarchy().Base() {
			t.Fatalf("%s seed %d: hierarchy (L=%d base=%v) != oracle (L=%d base=%v)",
				env.family, env.seed, res.TopLevel, res.Base, oracle.MaxLevel(), oracle.Hierarchy().Base())
		}
		for v := 0; v < env.g.N(); v++ {
			if int(res.Labels[v]) != oracle.LabelOf(v) {
				t.Fatalf("%s seed %d node %d: label %d != oracle %d",
					env.family, env.seed, v, res.Labels[v], oracle.LabelOf(v))
			}
			wantB, wantN := oracle.EncodeTable(v)
			if res.TableBits[v] != wantN || !bytes.Equal(res.Tables[v], wantB) {
				t.Fatalf("%s seed %d node %d: table differs (%d bits vs %d)",
					env.family, env.seed, v, res.TableBits[v], wantN)
			}
		}
		for i, lv := range res.Levels {
			if len(lv) != len(oracle.Hierarchy().Levels[i]) {
				t.Fatalf("%s seed %d: level %d has %d members, oracle %d",
					env.family, env.seed, i, len(lv), len(oracle.Hierarchy().Levels[i]))
			}
			for _, v := range lv {
				if !oracle.Hierarchy().InLevel(v, i) {
					t.Fatalf("%s seed %d: node %d not in oracle Y_%d", env.family, env.seed, v, i)
				}
			}
		}
	}
}

// TestSimpleRoutesWithinBound: routing over the protocol-built tables
// (through the pure decoded router, which shares nothing with the
// compiler) stays within the scheme's analytical stretch bound.
func TestSimpleRoutesWithinBound(t *testing.T) {
	for _, env := range equivEnvs(t, 3) {
		res, err := BuildSimple(env.g, 0.25, Config{})
		if err != nil {
			t.Fatalf("%s seed %d: BuildSimple: %v", env.family, env.seed, err)
		}
		dec, err := labeled.DecodeSimple(env.g, res.Tables, res.TableBits)
		if err != nil {
			t.Fatalf("%s seed %d: decode: %v", env.family, env.seed, err)
		}
		a := metric.NewAPSP(env.g)
		oracle, err := labeled.NewSimple(env.g, a, 0.25)
		if err != nil {
			t.Fatalf("%s seed %d: oracle: %v", env.family, env.seed, err)
		}
		bound := oracle.StretchBound()
		for _, pr := range core.SamplePairs(env.g.N(), 60, env.seed) {
			label := int(res.Labels[pr[1]])
			rt, err := dec.RouteToLabel(pr[0], label)
			if err != nil {
				t.Fatalf("%s seed %d: route %d->%d: %v", env.family, env.seed, pr[0], pr[1], err)
			}
			if s := rt.Stretch(a.Dist(pr[0], pr[1])); s > bound {
				t.Fatalf("%s seed %d: stretch %v > bound %v for %d->%d",
					env.family, env.seed, s, bound, pr[0], pr[1])
			}
		}
	}
}
