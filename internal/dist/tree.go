package dist

import (
	"fmt"
	"math"
	"sort"

	"compactrouting/internal/graph"
	"compactrouting/internal/treeroute"
)

// TreeResult is the output of BuildTree: every node's protocol-built
// routing state plus the assembled treeroute scheme and the
// construction cost.
type TreeResult struct {
	Root int
	// Parent[v] is v's elected shortest-path-tree parent (-1 at root) —
	// identical to metric.Dijkstra(g, root).Parent.
	Parent []int
	// Info[v] is the per-node table state the protocol computed.
	Info []treeroute.NodeInfo
	// Scheme is treeroute.Assemble(root, Info).
	Scheme   *treeroute.Scheme
	Counters Counters
}

// treeChild pairs a child with its reported subtree size.
type treeChild struct {
	id   int32
	size uint64
}

// treeNode is one node's protocol state for BuildTree.
type treeNode struct {
	dist     float64
	parent   int32
	announce bool // distance improved since last flush
	kids     []treeChild
	sizeGot  int
	size     uint64
	info     treeroute.NodeInfo
}

// treeProto elects the shortest-path tree rooted at root and compiles
// per-node treeroute state in four phases:
//
//	0: distance election — synchronous Bellman–Ford from the root.
//	   On equal distance the min-id neighbor wins, which converges to
//	   exactly metric.Dijkstra's parent choice.
//	1: child announce — each non-root tells its parent it is a child.
//	2: size convergecast — leaves report 1; internal nodes report
//	   1 + sum of children once all children reported.
//	3: interval downcast — the root numbers itself [0, n-1]; every node
//	   orders its children (subtree size desc, id asc — treeroute's
//	   HeavyFirst order), carves contiguous DFS blocks and pushes each
//	   child its interval and label.
type treeProto struct {
	root  int
	nodes []treeNode
}

func (p *treeProto) Done(phase int) bool { return phase > 3 }

func (p *treeProto) Begin(phase int, c *Ctx) {
	v := c.Node()
	st := &p.nodes[v]
	switch phase {
	case 0:
		st.parent = -1
		if v == p.root {
			st.dist = 0
			st.announce = true
		} else {
			st.dist = math.Inf(1)
		}
	case 1:
		if v != p.root {
			c.Send(int(st.parent), &Msg{Kind: KindChild})
		}
	case 2:
		// Arrival order of child announcements depends on the fault
		// schedule; sort so later phases are schedule-independent.
		sort.Slice(st.kids, func(a, b int) bool { return st.kids[a].id < st.kids[b].id })
		if len(st.kids) == 0 {
			p.sizeReady(c, st)
		}
	case 3:
		if v == p.root {
			st.info = treeroute.NodeInfo{In: 0, Out: int32(st.size) - 1, Parent: -1}
			// Empty, not nil: labels decoded off the wire always carry a
			// non-nil slice, and the oracle equivalence is DeepEqual.
			st.info.Label.Light = []treeroute.LightEntry{}
			p.assignChildren(c, st)
		}
	}
}

// sizeReady fires when v knows its subtree size: report it to the
// parent, or record the total at the root.
func (p *treeProto) sizeReady(c *Ctx, st *treeNode) {
	st.size = 1
	for _, k := range st.kids {
		st.size += k.size
	}
	if c.Node() != p.root {
		c.Send(int(st.parent), &Msg{Kind: KindSize, Count: st.size})
	}
}

// assignChildren carves v's interval into contiguous child blocks in
// HeavyFirst order and pushes each child its interval and label. It
// also completes v's own table (heavy child and interval) and label.
func (p *treeProto) assignChildren(c *Ctx, st *treeNode) {
	st.info.Heavy = -1
	st.info.Label = treeroute.Label{In: st.info.In, Light: st.info.Label.Light}
	kids := st.kids
	sort.Slice(kids, func(a, b int) bool {
		if kids[a].size != kids[b].size {
			return kids[a].size > kids[b].size
		}
		return kids[a].id < kids[b].id
	})
	next := st.info.In + 1
	for i, k := range kids {
		in, out := next, next+int32(k.size)-1
		next = out + 1
		light := st.info.Label.Light
		if i == 0 {
			st.info.Heavy = k.id
			st.info.HeavyIn, st.info.HeavyOut = in, out
		} else {
			ext := make([]treeroute.LightEntry, len(light)+1)
			copy(ext, light)
			ext[len(light)] = treeroute.LightEntry{ParentIn: st.info.In, Child: k.id}
			light = ext
		}
		c.Send(int(k.id), &Msg{Kind: KindAssign, A: in, B: out, Light: light})
	}
	if next != st.info.Out+1 {
		c.Fail(fmt.Errorf("dist: node %d children cover [%d,%d) inside [%d,%d]",
			c.Node(), st.info.In+1, next, st.info.In, st.info.Out))
	}
}

func (p *treeProto) Recv(phase int, c *Ctx, from int, m *Msg) {
	v := c.Node()
	st := &p.nodes[v]
	switch {
	case phase == 0 && m.Kind == KindDist:
		cand := m.Dist + c.EdgeWeight(from)
		if cand < st.dist {
			st.dist = cand
			st.parent = int32(from)
			st.announce = true
			//determinlint:allow floateq deliberate exact tie-break: must match Dijkstra's equal-distance min-id parent rule bit for bit
		} else if cand == st.dist && int32(from) < st.parent {
			// Same min-id-on-equal rule as metric.Dijkstra, and order-
			// independent once every neighbor's final distance has been
			// heard.
			st.parent = int32(from)
		}
	case phase == 1 && m.Kind == KindChild:
		st.kids = append(st.kids, treeChild{id: int32(from)})
	case phase == 2 && m.Kind == KindSize:
		p.recvSize(c, st, from, m.Count)
	case phase == 3 && m.Kind == KindAssign:
		st.info.In, st.info.Out, st.info.Parent = m.A, m.B, st.parent
		st.info.Label.Light = m.Light
		p.assignChildren(c, st)
	default:
		c.Fail(fmt.Errorf("dist: node %d got kind %d in tree phase %d", v, m.Kind, phase))
	}
}

func (p *treeProto) recvSize(c *Ctx, st *treeNode, from int, size uint64) {
	for i := range st.kids {
		if st.kids[i].id == int32(from) {
			st.kids[i].size = size
			st.sizeGot++
			if st.sizeGot == len(st.kids) {
				p.sizeReady(c, st)
			}
			return
		}
	}
	c.Fail(fmt.Errorf("dist: node %d got size from non-child %d", c.Node(), from))
}

func (p *treeProto) Flush(phase int, c *Ctx) {
	st := &p.nodes[c.Node()]
	if phase == 0 && st.announce {
		// One announcement per round regardless of how many relaxations
		// the round's inbox caused.
		st.announce = false
		for _, e := range c.Neighbors() {
			c.Send(e.To, &Msg{Kind: KindDist, Dist: st.dist})
		}
	}
}

// BuildTree runs the distributed shortest-path-tree construction rooted
// at root and assembles the resulting treeroute scheme. The tree, its
// DFS numbering and every label are identical to the oracle pipeline
// treeroute.New(metric.Dijkstra(g, root).Parent, root).
func BuildTree(g *graph.Graph, root int, cfg Config) (*TreeResult, error) {
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("dist: root %d out of range", root)
	}
	p := &treeProto{root: root, nodes: make([]treeNode, g.N())}
	counters, err := Run(g, p, cfg)
	if err != nil {
		return nil, err
	}
	res := &TreeResult{
		Root:     root,
		Parent:   make([]int, g.N()),
		Info:     make([]treeroute.NodeInfo, g.N()),
		Counters: counters,
	}
	for v := range p.nodes {
		res.Parent[v] = int(p.nodes[v].parent)
		res.Info[v] = p.nodes[v].info
	}
	res.Scheme, err = treeroute.Assemble(root, res.Info)
	if err != nil {
		return nil, err
	}
	return res, nil
}
