package dist

import (
	"bytes"
	"reflect"
	"testing"

	"compactrouting/internal/faultsim"
)

// TestBuildTreeUnderLoss: construction over a lossy link layer (every
// transmission dropped with probability 0.3, retransmitted next round)
// must converge to exactly the tables a lossless run builds, at the
// cost of a bounded number of extra rounds.
func TestBuildTreeUnderLoss(t *testing.T) {
	g := geo(t, 64, 5)
	clean, err := BuildTree(g, 0, Config{})
	if err != nil {
		t.Fatalf("lossless BuildTree: %v", err)
	}
	lossy, err := BuildTree(g, 0, Config{Plan: &faultsim.FaultPlan{Seed: 9, Loss: 0.3}})
	if err != nil {
		t.Fatalf("lossy BuildTree: %v", err)
	}
	if !reflect.DeepEqual(clean.Parent, lossy.Parent) || !reflect.DeepEqual(clean.Info, lossy.Info) {
		t.Fatal("lossy tree build converged to different tables")
	}
	if lossy.Counters.Drops == 0 {
		t.Fatal("fault plan dropped nothing; the lossy run did not exercise retransmission")
	}
	// Losses stretch phases but cannot change the outcome; with p=0.3 the
	// expected slowdown is ~1/(1-p), so 4x plus slack is a safe
	// deterministic ceiling (both sides are seeded constants).
	if lossy.Counters.Rounds > 4*clean.Counters.Rounds+64 {
		t.Fatalf("lossy build took %d rounds vs %d lossless", lossy.Counters.Rounds, clean.Counters.Rounds)
	}
}

// TestBuildSimpleUnderLoss: the full distributed Simple construction
// under the same lossy plan yields byte-identical tables and labels.
func TestBuildSimpleUnderLoss(t *testing.T) {
	g := geo(t, 48, 5)
	clean, err := BuildSimple(g, 0.25, Config{})
	if err != nil {
		t.Fatalf("lossless BuildSimple: %v", err)
	}
	lossy, err := BuildSimple(g, 0.25, Config{Plan: &faultsim.FaultPlan{Seed: 9, Loss: 0.3}})
	if err != nil {
		t.Fatalf("lossy BuildSimple: %v", err)
	}
	if !reflect.DeepEqual(clean.Labels, lossy.Labels) {
		t.Fatal("lossy simple build assigned different labels")
	}
	for v := 0; v < g.N(); v++ {
		if clean.TableBits[v] != lossy.TableBits[v] || !bytes.Equal(clean.Tables[v], lossy.Tables[v]) {
			t.Fatalf("lossy simple build: table %d differs", v)
		}
	}
	if lossy.Counters.Drops == 0 {
		t.Fatal("fault plan dropped nothing")
	}
	if lossy.Counters.Rounds > 4*clean.Counters.Rounds+64 {
		t.Fatalf("lossy build took %d rounds vs %d lossless", lossy.Counters.Rounds, clean.Counters.Rounds)
	}
}

// TestBuildTreeLossDeterminism: two lossy runs with the same plan seed
// replay the identical fault sequence — equal drops, rounds and bits.
func TestBuildTreeLossDeterminism(t *testing.T) {
	g := geo(t, 64, 5)
	plan := &faultsim.FaultPlan{Seed: 9, Loss: 0.3}
	a, err := BuildTree(g, 0, Config{Plan: plan})
	if err != nil {
		t.Fatalf("BuildTree: %v", err)
	}
	b, err := BuildTree(g, 0, Config{Plan: plan})
	if err != nil {
		t.Fatalf("BuildTree: %v", err)
	}
	if a.Counters != b.Counters {
		t.Fatalf("same plan, different costs: %+v vs %+v", a.Counters, b.Counters)
	}
}
