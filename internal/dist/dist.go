// Package dist is the in-network construction layer: a synchronous
// round-based (CONGEST-style) message-passing simulator in which every
// node starts knowing only its own id and local adjacency and exchanges
// size-bounded messages with its graph neighbors, plus the distributed
// protocols that build this repository's routing substrates on top of
// it — shortest-path-tree election with subtree aggregation feeding
// internal/treeroute (BuildTree), and the full labeled Simple scheme
// whose per-node tables come out of the protocol instead of the
// omniscient APSP oracle (BuildSimple).
//
// Rounds, delivered messages and message bits are first-class costs:
// the engine accounts them the way internal/bits accounts table bits,
// and cmd/distsim reports them next to the resulting table sizes
// (construction cost vs. table quality, following Elkin–Neiman's
// distributed constructions of compact routing schemes).
//
// Every tie-break in the protocols reproduces the oracle's exactly
// (min-id among equal-cost next hops, greedy-by-id net election,
// ascending-id netting-tree DFS), so tables built in-network are
// byte-identical to oracle-built ones — asserted across seeds and graph
// families by the equivalence suite.
//
// Faults: the engine can run its link layer through a
// faultsim.FaultPlan. Each transmission's fate is a pure hash of
// (plan seed, transmission id, attempt); lost messages are
// retransmitted the next round, so construction over lossy links
// converges to the same tables at the cost of extra rounds.
//
// Determinism: delivery order is serial in sender id, handlers run over
// the shared internal/par pool but write only state owned by their
// node, and no wall-clock value is consulted, so a build is
// byte-identical at GOMAXPROCS=1 and 8 (see parallel_test.go). This
// package is bound by the repo's deterministic ruleset: its outputs
// must be a pure function of explicit seeds (determinlint enforces the
// source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package dist

import (
	"errors"
	"fmt"

	"compactrouting/internal/bits"
	"compactrouting/internal/faultsim"
	"compactrouting/internal/graph"
	"compactrouting/internal/par"
)

// DefaultMaxMsgBits is the CONGEST message bound the engine enforces
// when Config.MaxMsgBits is zero: O(log n) words. Protocols batch
// their announcements up to this size.
const DefaultMaxMsgBits = 512

// Config parameterizes an engine run.
type Config struct {
	// MaxMsgBits bounds the size of a single message in bits
	// (DefaultMaxMsgBits when zero). Send fails the run if a protocol
	// exceeds it.
	MaxMsgBits int
	// MaxRounds aborts a protocol that fails to quiesce (40n+512 when
	// zero; a permanent outage under a FaultPlan trips it).
	MaxRounds int
	// Plan, when non-nil, drives every link transmission through a
	// seeded fault injector; lost messages are retransmitted next round.
	Plan *faultsim.FaultPlan
}

// Counters is the engine's cost accounting. All figures are exact and
// deterministic for a given (graph, protocol, config).
type Counters struct {
	// Rounds is the number of synchronous rounds in which at least one
	// transmission was attempted, summed over all protocol phases.
	Rounds int64 `json:"rounds"`
	// Phases is the number of protocol phases run.
	Phases int64 `json:"phases"`
	// Messages is the number of delivered messages.
	Messages int64 `json:"messages"`
	// Drops is the number of transmissions lost to the fault plan (each
	// one is retransmitted in the next round).
	Drops int64 `json:"drops"`
	// TotalBits is the total bits across all transmissions, delivered
	// and dropped.
	TotalBits int64 `json:"total_bits"`
	// MaxMsgBits is the largest single message observed.
	MaxMsgBits int64 `json:"max_msg_bits"`
	// MaxEdgeRoundBits is the largest bit volume any directed edge
	// carried in one round — the CONGEST congestion measure.
	MaxEdgeRoundBits int64 `json:"max_edge_round_bits"`
}

// Proto is a distributed construction protocol. The engine runs phases
// until Done reports completion; within a phase it delivers staged
// messages in synchronous rounds until no transmission is pending.
//
// Begin and Flush are invoked once per node (Begin at phase start,
// Flush after each round's deliveries); Recv once per delivered
// message. All three run in parallel across nodes and must write only
// state owned by their node (the internal/par contract). Done is
// called serially between phases with the index of the phase about to
// start.
type Proto interface {
	Done(phase int) bool
	Begin(phase int, c *Ctx)
	Recv(phase int, c *Ctx, from int, m *Msg)
	Flush(phase int, c *Ctx)
}

// Ctx is a node's handle into the engine: its identity, its local
// adjacency, and its outbox. A protocol sees nothing else.
type Ctx struct {
	e *engine
	v int32
}

// Node returns the node this context belongs to.
func (c *Ctx) Node() int { return int(c.v) }

// Neighbors returns the node's adjacency list (sorted by neighbor id).
// The slice must not be modified.
func (c *Ctx) Neighbors() []graph.Edge { return c.e.g.Neighbors(int(c.v)) }

// EdgeWeight returns the weight of the edge to neighbor u; it fails the
// run if u is not adjacent.
func (c *Ctx) EdgeWeight(u int) float64 {
	w, ok := c.e.g.NeighborWeight(int(c.v), u)
	if !ok {
		c.Fail(fmt.Errorf("dist: node %d has no edge to %d", c.v, u))
	}
	return w
}

// Send stages m for delivery to neighbor `to` in the next round. The
// message is serialized immediately (m may be reused) and must respect
// the engine's size bound; sending to a non-neighbor fails the run —
// the engine is the model, so a protocol cannot cheat even by bug.
func (c *Ctx) Send(to int, m *Msg) {
	e := c.e
	if _, ok := e.g.NeighborWeight(int(c.v), to); !ok {
		c.Fail(fmt.Errorf("dist: node %d sent %d-kind to non-neighbor %d", c.v, m.Kind, to))
		return
	}
	var w bits.Writer
	m.Encode(&w)
	if w.Len() > e.maxMsgBits {
		c.Fail(fmt.Errorf("dist: node %d message kind %d is %d bits (bound %d)", c.v, m.Kind, w.Len(), e.maxMsgBits))
		return
	}
	e.stage[c.v] = append(e.stage[c.v], txMsg{to: int32(to), nbit: int32(w.Len()), buf: w.Bytes()})
}

// Fail records a protocol error at this node; the engine aborts the run
// after the current parallel step with the lowest-id node's error.
func (c *Ctx) Fail(err error) {
	if c.e.errs[c.v] == nil {
		c.e.errs[c.v] = err
	}
}

// txMsg is a staged outgoing message.
type txMsg struct {
	to   int32
	nbit int32
	buf  []byte
}

// rxMsg is a delivered message awaiting processing.
type rxMsg struct {
	from int32
	nbit int32
	buf  []byte
}

// txAttempt is an in-flight transmission (staged this round or
// retransmitted after a loss).
type txAttempt struct {
	from, to int32
	nbit     int32
	buf      []byte
	id       uint64 // transmission id, assigned serially
	attempt  uint64
}

// engine is the synchronous round simulator.
type engine struct {
	g          *graph.Graph
	inj        *faultsim.Injector
	maxMsgBits int
	maxRounds  int64

	stage [][]txMsg // per-node outboxes, filled by handlers
	inbox [][]rxMsg // per-node inboxes for the current round
	pend  []txAttempt
	errs  []error
	ctxs  []Ctx

	seq      uint64
	counters Counters
}

func newEngine(g *graph.Graph, cfg Config) *engine {
	e := &engine{
		g:          g,
		maxMsgBits: cfg.MaxMsgBits,
		maxRounds:  int64(cfg.MaxRounds),
		stage:      make([][]txMsg, g.N()),
		inbox:      make([][]rxMsg, g.N()),
		errs:       make([]error, g.N()),
		ctxs:       make([]Ctx, g.N()),
	}
	if e.maxMsgBits <= 0 {
		e.maxMsgBits = DefaultMaxMsgBits
	}
	if e.maxRounds <= 0 {
		e.maxRounds = int64(40*g.N() + 512)
	}
	if cfg.Plan != nil {
		e.inj = faultsim.NewInjector(*cfg.Plan)
	}
	for i := range e.ctxs {
		e.ctxs[i] = Ctx{e: e, v: int32(i)}
	}
	return e
}

// firstErr returns the lowest-id node's recorded error — deterministic
// regardless of which parallel worker failed first.
func (e *engine) firstErr() error {
	for _, err := range e.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// deliver moves staged sends and pending retransmissions into inboxes,
// serially in sender-id order: transmission ids, loss draws and inbox
// orders are therefore identical under every GOMAXPROCS. It returns
// false when nothing was in flight (the phase has quiesced).
func (e *engine) deliver() bool {
	n := e.g.N()
	attempted := false
	var edgeMax int64
	edgeBits := make(map[int64]int64)
	retry := e.pend[:0]
	t := float64(e.counters.Rounds)
	one := func(a txAttempt) {
		attempted = true
		e.counters.TotalBits += int64(a.nbit)
		if int64(a.nbit) > e.counters.MaxMsgBits {
			e.counters.MaxMsgBits = int64(a.nbit)
		}
		k := int64(a.from)*int64(n) + int64(a.to)
		edgeBits[k] += int64(a.nbit)
		if edgeBits[k] > edgeMax {
			edgeMax = edgeBits[k]
		}
		if e.inj != nil && !e.inj.TransmitOK(int(a.from), int(a.to), t, a.id, a.attempt) {
			e.counters.Drops++
			a.attempt++
			retry = append(retry, a)
			return
		}
		e.counters.Messages++
		e.inbox[a.to] = append(e.inbox[a.to], rxMsg{from: a.from, nbit: a.nbit, buf: a.buf})
	}
	// Retransmissions first (they carry the earliest ids), then this
	// round's staged sends in sender-id order.
	pending := e.pend
	for _, a := range pending {
		one(a)
	}
	for v := 0; v < n; v++ {
		for _, m := range e.stage[v] {
			a := txAttempt{from: int32(v), to: m.to, nbit: m.nbit, buf: m.buf, id: e.seq}
			e.seq++
			one(a)
		}
		e.stage[v] = e.stage[v][:0]
	}
	e.pend = retry
	if edgeMax > e.counters.MaxEdgeRoundBits {
		e.counters.MaxEdgeRoundBits = edgeMax
	}
	return attempted
}

// step processes node v's inbox for this round and flushes its batched
// announcements. It runs under par.For; all writes are to v-owned
// state.
func (e *engine) step(p Proto, phase, v int) {
	c := &e.ctxs[v]
	for k := range e.inbox[v] {
		rx := &e.inbox[v][k]
		m, err := DecodeMsg(bits.NewReader(rx.buf, int(rx.nbit)))
		if err != nil {
			c.Fail(fmt.Errorf("dist: node %d inbox decode: %w", v, err))
			return
		}
		p.Recv(phase, c, int(rx.from), m)
	}
	e.inbox[v] = e.inbox[v][:0]
	p.Flush(phase, c)
}

// begin starts a phase at node v: Begin stages the phase's opening
// sends and Flush drains any batched announcements Begin queued.
func (e *engine) begin(p Proto, phase, v int) {
	c := &e.ctxs[v]
	p.Begin(phase, c)
	p.Flush(phase, c)
}

// Run executes the protocol on the graph and returns the cost counters.
// Phases advance when the network quiesces (no staged send, no pending
// retransmission); the run ends when Done reports completion, and
// aborts with an error if any node's handler failed or MaxRounds
// elapsed without quiescing.
func Run(g *graph.Graph, p Proto, cfg Config) (Counters, error) {
	e := newEngine(g, cfg)
	n := g.N()
	for phase := 0; !p.Done(phase); phase++ {
		if int64(phase) > e.maxRounds {
			return e.counters, errors.New("dist: protocol never reported Done")
		}
		e.counters.Phases++
		par.For(n, func(v int) { e.begin(p, phase, v) })
		if err := e.firstErr(); err != nil {
			return e.counters, err
		}
		for e.deliver() {
			e.counters.Rounds++
			if e.counters.Rounds > e.maxRounds {
				return e.counters, fmt.Errorf("dist: phase %d exceeded %d rounds without quiescing", phase, e.maxRounds)
			}
			par.For(n, func(v int) { e.step(p, phase, v) })
			if err := e.firstErr(); err != nil {
				return e.counters, err
			}
		}
	}
	return e.counters, nil
}
