package dist

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/treeroute"
)

// geo returns a connected random geometric graph of roughly n nodes.
func geo(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	radius := 1.8 * math.Sqrt(math.Log(float64(n))/float64(n))
	g, _, err := graph.RandomGeometric(n, radius, seed)
	if err != nil {
		t.Fatalf("geometric graph: %v", err)
	}
	return g
}

// TestBuildTreeMatchesOracle: the distributed SPT election plus
// aggregation must reproduce metric.Dijkstra's parents and
// treeroute.New's DFS numbering exactly.
func TestBuildTreeMatchesOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := geo(t, 64, seed)
		res, err := BuildTree(g, 0, Config{})
		if err != nil {
			t.Fatalf("seed %d: BuildTree: %v", seed, err)
		}
		spt := metric.Dijkstra(g, 0)
		if !reflect.DeepEqual(res.Parent, spt.Parent) {
			t.Fatalf("seed %d: protocol parents differ from Dijkstra", seed)
		}
		oracle, err := treeroute.New(spt.Parent, 0)
		if err != nil {
			t.Fatalf("seed %d: oracle tree: %v", seed, err)
		}
		for v := 0; v < g.N(); v++ {
			want, _ := oracle.Info(v)
			if !reflect.DeepEqual(res.Info[v], want) {
				t.Fatalf("seed %d node %d: protocol info %+v != oracle %+v", seed, v, res.Info[v], want)
			}
		}
		if res.Counters.Rounds == 0 || res.Counters.Messages == 0 || res.Counters.TotalBits == 0 {
			t.Fatalf("seed %d: empty counters %+v", seed, res.Counters)
		}
		if res.Counters.MaxMsgBits > DefaultMaxMsgBits {
			t.Fatalf("seed %d: message bound violated: %d", seed, res.Counters.MaxMsgBits)
		}
	}
}

// TestBuildTreeSingleNode: the degenerate one-node graph must build
// with zero messages.
func TestBuildTreeSingleNode(t *testing.T) {
	g, err := graph.Path(1, 1)
	if err != nil {
		t.Fatalf("path: %v", err)
	}
	res, err := BuildTree(g, 0, Config{})
	if err != nil {
		t.Fatalf("BuildTree: %v", err)
	}
	if res.Counters.Messages != 0 || res.Scheme.Size() != 1 {
		t.Fatalf("unexpected single-node result: %+v", res.Counters)
	}
}

// TestSendValidation: sending to a non-neighbor or over the size bound
// must fail the run with the offending node's error.
func TestSendValidation(t *testing.T) {
	g, err := graph.Path(4, 1)
	if err != nil {
		t.Fatalf("path: %v", err)
	}
	_, err = Run(g, &rogueProto{to: 3}, Config{})
	if err == nil || !strings.Contains(err.Error(), "non-neighbor") {
		t.Fatalf("non-neighbor send not rejected: %v", err)
	}
	big := &rogueProto{to: 1, entries: 100}
	_, err = Run(g, big, Config{MaxMsgBits: 64})
	if err == nil || !strings.Contains(err.Error(), "bound") {
		t.Fatalf("oversized send not rejected: %v", err)
	}
}

// rogueProto sends one misbehaving message from node 0.
type rogueProto struct {
	to      int
	entries int
}

func (p *rogueProto) Done(phase int) bool { return phase > 0 }
func (p *rogueProto) Begin(phase int, c *Ctx) {
	if c.Node() != 0 {
		return
	}
	m := &Msg{Kind: KindRange}
	for i := 0; i < p.entries; i++ {
		m.Ranges = append(m.Ranges, RangeEntry{Node: int32(i)})
	}
	if p.entries == 0 {
		m = &Msg{Kind: KindChild}
	}
	c.Send(p.to, m)
}
func (p *rogueProto) Recv(phase int, c *Ctx, from int, m *Msg) {}
func (p *rogueProto) Flush(phase int, c *Ctx)                  {}
