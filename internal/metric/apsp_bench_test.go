package metric

import (
	"math"
	"testing"

	"compactrouting/internal/graph"
)

// benchOracle builds a geometric oracle for the ball benchmarks.
func benchOracle(tb testing.TB, n int) *APSP {
	tb.Helper()
	radius := 1.8 * math.Sqrt(math.Log(float64(n))/float64(n))
	g, _, err := graph.RandomGeometric(n, radius, 1)
	if err != nil {
		tb.Fatal(err)
	}
	return NewAPSP(g)
}

// BenchmarkBall measures the allocating accessor the scheme
// constructors used to call per (node, level).
func BenchmarkBall(b *testing.B) {
	a := benchOracle(b, 256)
	r := a.Diameter() / 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Ball(i%a.N(), r)
	}
}

// BenchmarkAppendBall measures the buffer-reusing variant; it must
// report zero allocs/op once the buffer has grown to ball size.
func BenchmarkAppendBall(b *testing.B) {
	a := benchOracle(b, 256)
	r := a.Diameter() / 4
	buf := make([]int, 0, a.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = a.AppendBall(buf[:0], i%a.N(), r)
	}
	_ = buf
}

func BenchmarkBallOfSize(b *testing.B) {
	a := benchOracle(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.BallOfSize(i%a.N(), 64)
	}
}

func BenchmarkAppendBallOfSize(b *testing.B) {
	a := benchOracle(b, 256)
	buf := make([]int, 0, a.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = a.AppendBallOfSize(buf[:0], i%a.N(), 64)
	}
	_ = buf
}

// TestAppendBallMatchesBall pins the append variants to the allocating
// ones.
func TestAppendBallMatchesBall(t *testing.T) {
	a := benchOracle(t, 64)
	buf := make([]int, 0, a.N())
	for u := 0; u < a.N(); u++ {
		r := a.RadiusOfSize(u, 1+u%a.N())
		want := a.Ball(u, r)
		buf = a.AppendBall(buf[:0], u, r)
		if len(buf) != len(want) {
			t.Fatalf("u=%d: AppendBall len %d, Ball len %d", u, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("u=%d: AppendBall[%d] = %d, want %d", u, i, buf[i], want[i])
			}
		}
		wantK := a.BallOfSize(u, 17)
		gotK := a.AppendBallOfSize(buf[:0], u, 17)
		if len(gotK) != len(wantK) {
			t.Fatalf("u=%d: AppendBallOfSize len %d, want %d", u, len(gotK), len(wantK))
		}
		for i := range wantK {
			if gotK[i] != wantK[i] {
				t.Fatalf("u=%d: AppendBallOfSize[%d] = %d, want %d", u, i, gotK[i], wantK[i])
			}
		}
	}
}
