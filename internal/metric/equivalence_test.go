package metric

import (
	"fmt"
	"math"
	"testing"

	"compactrouting/internal/graph"
)

// equivGraphs builds the four-family test matrix the dense/lazy
// equivalence suite sweeps: 10 seeds x 3 sizes x 4 graph families
// (grids with holes, random geometric, random trees, power-law).
// Scheme-level equivalence over the same matrix lives in
// internal/exp's backend equivalence test (the schemes would be an
// import cycle here).
func equivGraphs(t *testing.T, size int, seed int64) map[string]*graph.Graph {
	t.Helper()
	out := make(map[string]*graph.Graph)
	side := 1
	for side*side < size {
		side++
	}
	gh, _, err := graph.GridWithHoles(side, side, 0.25, seed)
	if err != nil {
		t.Fatalf("grid-holes: %v", err)
	}
	out["grid-holes"] = gh
	radius := 1.8 * math.Sqrt(math.Log(float64(size))/float64(size))
	geo, _, err := graph.RandomGeometric(size, radius, seed)
	if err != nil {
		t.Fatalf("geometric: %v", err)
	}
	out["geometric"] = geo
	rt, err := graph.RandomTree(size, 4, seed)
	if err != nil {
		t.Fatalf("random-tree: %v", err)
	}
	out["random-tree"] = rt
	pl, err := graph.PowerLaw(size, 2, 8, seed)
	if err != nil {
		t.Fatalf("power-law: %v", err)
	}
	out["power-law"] = pl
	return out
}

// TestDenseLazyEquivalence sweeps every Distancer query over both
// backends and requires bit-identical answers: distances and radii by
// math.Float64bits, balls and orders element for element.
func TestDenseLazyEquivalence(t *testing.T) {
	for _, size := range []int{16, 33, 64} {
		for seed := int64(1); seed <= 10; seed++ {
			for fam, g := range equivGraphs(t, size, seed) {
				t.Run(fmt.Sprintf("%s/n%d/seed%d", fam, size, seed), func(t *testing.T) {
					dense := NewAPSP(g)
					// A small cache forces eviction and re-derivation
					// mid-sweep; answers must not notice.
					lazy := NewLazyOracleOpts(g, LazyOpts{MaxEntries: 4 * g.N()})
					checkBackendsAgree(t, g, dense, lazy, seed)
				})
			}
		}
	}
}

func checkBackendsAgree(t *testing.T, g *graph.Graph, dense *APSP, lazy *LazyOracle, seed int64) {
	t.Helper()
	n := g.N()
	if lazy.N() != n {
		t.Fatalf("lazy.N() = %d, want %d", lazy.N(), n)
	}
	if !eqBits(dense.MinPairDistance(), lazy.MinPairDistance()) {
		t.Fatalf("MinPairDistance: dense %v lazy %v", dense.MinPairDistance(), lazy.MinPairDistance())
	}
	// Radii exercised by ball queries: the hierarchy's level radii.
	base := dense.MinPairDistance()
	var radii []float64
	for r := base; r <= dense.Diameter()*2; r *= 2 {
		radii = append(radii, r, r/0.25)
	}
	for u := 0; u < n; u++ {
		if !eqBits(dense.Eccentricity(u), lazy.Eccentricity(u)) {
			t.Fatalf("Eccentricity(%d): dense %v lazy %v", u, dense.Eccentricity(u), lazy.Eccentricity(u))
		}
		for v := 0; v < n; v++ {
			if !eqBits(dense.Dist(u, v), lazy.Dist(u, v)) {
				t.Fatalf("Dist(%d,%d): dense %v lazy %v", u, v, dense.Dist(u, v), lazy.Dist(u, v))
			}
			if dh, lh := dense.NextHop(u, v), lazy.NextHop(u, v); dh != lh {
				t.Fatalf("NextHop(%d,%d): dense %d lazy %d", u, v, dh, lh)
			}
		}
		for k := 0; k < n; k++ {
			if dk, lk := dense.Kth(u, k), lazy.Kth(u, k); dk != lk {
				t.Fatalf("Kth(%d,%d): dense %d lazy %d", u, k, dk, lk)
			}
		}
		for _, size := range []int{1, 2, 3, n / 2, n} {
			if size < 1 {
				continue
			}
			if dr, lr := dense.RadiusOfSize(u, size), lazy.RadiusOfSize(u, size); !eqBits(dr, lr) {
				t.Fatalf("RadiusOfSize(%d,%d): dense %v lazy %v", u, size, dr, lr)
			}
			if !intsEqual(dense.BallOfSize(u, size), lazy.BallOfSize(u, size)) {
				t.Fatalf("BallOfSize(%d,%d) differs", u, size)
			}
		}
		for _, r := range radii {
			db, lb := dense.Ball(u, r), lazy.Ball(u, r)
			if !intsEqual(db, lb) {
				t.Fatalf("Ball(%d,%g): dense %v lazy %v", u, r, db, lb)
			}
			if ds, ls := dense.BallSize(u, r), lazy.BallSize(u, r); ds != ls {
				t.Fatalf("BallSize(%d,%g): dense %d lazy %d", u, r, ds, ls)
			}
		}
	}
	// Nearest over a pseudo-random candidate set.
	set := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		set = append(set, int((seed*2654435761+int64(i)*40503)%int64(n)))
	}
	for u := 0; u < n; u++ {
		dn, dd := dense.Nearest(u, set)
		ln, ld := lazy.Nearest(u, set)
		if dn != ln || !eqBits(dd, ld) {
			t.Fatalf("Nearest(%d): dense (%d,%v) lazy (%d,%v)", u, dn, dd, ln, ld)
		}
	}
}

func eqBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
