package metric

import (
	"math"
	"sort"
	"sync"

	"compactrouting/internal/graph"
	"compactrouting/internal/par"
)

// LazyOracle is the on-demand distance backend: instead of the dense
// APSP matrix it computes truncated single-source Dijkstra rows per
// query, exactly the prefix the full run from that source would settle,
// and caches them in a bounded generation-keyed LRU. Because Dijkstra
// settles nodes in nondecreasing distance, a truncated row is
// byte-identical to the corresponding prefix of the dense backend's
// row — every Distancer query therefore returns bit-identical results
// on both backends (equivalence_test.go), while memory stays
// proportional to the cached rows instead of n².
//
// Queries are deterministic regardless of cache state: an evicted row
// is re-derived by re-running the same truncated Dijkstra, so answers
// are a pure function of (graph, query), never of eviction history or
// scheduling (lazy_property_test.go pins this).
//
// All methods are safe for concurrent use; a single mutex serializes
// cache access and cold-miss construction. For sweep-shaped workloads,
// PrefetchBalls shards cold rows over internal/par first.
type LazyOracle struct {
	g       *graph.Graph
	n       int
	minEdge float64

	mu      sync.Mutex
	gen     uint64
	rows    map[rowKey]*lazyRow
	head    *lazyRow // most recently used
	tail    *lazyRow // least recently used
	entries int      // total settled entries cached across rows
	maxEnt  int
	bld     *rowBuilder
}

// rowKey identifies a cached row: the oracle generation it was built
// under plus the source node.
type rowKey struct {
	gen uint64
	u   int32
}

// lazyRow is one source's truncated Dijkstra output.
type lazyRow struct {
	key rowKey
	// Settle-order arrays: nodes[i] was the i-th node settled, at
	// distance dist[i] (nondecreasing) with parent[i] its next hop
	// toward the source (-1 at the source).
	nodes  []int32
	dist   []float64
	parent []int32
	idx    map[int32]int32 // node -> settle position
	// ord lists settle positions re-sorted by (distance, node id) —
	// the dense backend's order-row tie-break.
	ord []int32
	// safeDist is the proven completeness radius: every node at
	// distance <= safeDist is settled, so ord entries up to it are an
	// exact prefix of the full order row. complete means the whole
	// graph is settled.
	safeDist float64
	complete bool

	prev, next *lazyRow // LRU list
}

// LazyOpts parameterizes NewLazyOracleOpts.
type LazyOpts struct {
	// Generation keys cached rows; AdvanceGeneration bumps it at
	// runtime (the serving plane's reload path).
	Generation uint64
	// MaxEntries bounds the total settled entries cached across rows
	// (roughly 20 bytes each). <= 0 selects the default: enough for a
	// handful of full rows plus the working set of a ball sweep.
	MaxEntries int
}

// defaultLazyEntries sizes the row cache when LazyOpts.MaxEntries is
// unset: 8 full rows' worth, but at least 1<<16 entries so small
// graphs cache everything.
func defaultLazyEntries(n int) int {
	e := 8 * n
	if e < 1<<16 {
		e = 1 << 16
	}
	return e
}

// NewLazyOracle returns the on-demand backend for g with default
// options. Construction is O(1): no Dijkstra runs until a query needs
// one.
func NewLazyOracle(g *graph.Graph) *LazyOracle {
	return NewLazyOracleOpts(g, LazyOpts{})
}

// NewLazyOracleOpts is NewLazyOracle with explicit options.
func NewLazyOracleOpts(g *graph.Graph, opts LazyOpts) *LazyOracle {
	maxEnt := opts.MaxEntries
	if maxEnt <= 0 {
		maxEnt = defaultLazyEntries(g.N())
	}
	// A single full row must always fit, or expansion could thrash.
	if maxEnt < g.N() {
		maxEnt = g.N()
	}
	return &LazyOracle{
		g:       g,
		n:       g.N(),
		minEdge: g.MinEdgeWeight(),
		gen:     opts.Generation,
		rows:    make(map[rowKey]*lazyRow),
		maxEnt:  maxEnt,
		bld:     newRowBuilder(g.N()),
	}
}

// Generation returns the current cache generation.
func (o *LazyOracle) Generation() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.gen
}

// AdvanceGeneration invalidates every cached row by moving to the next
// generation (rows of older generations are dropped immediately).
func (o *LazyOracle) AdvanceGeneration() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.gen++
	o.rows = make(map[rowKey]*lazyRow)
	o.head, o.tail, o.entries = nil, nil, 0
}

// CachedEntries reports the settled entries currently cached (test and
// metrics hook).
func (o *LazyOracle) CachedEntries() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.entries
}

// N returns the number of nodes.
func (o *LazyOracle) N() int { return o.n }

// MinPairDistance returns the smallest nonzero pairwise distance: on a
// connected positively-weighted graph, exactly the minimum edge weight
// (a multi-edge path sums at least two edges each >= it), so the bytes
// match the dense backend's matrix scan.
func (o *LazyOracle) MinPairDistance() float64 {
	if o.n < 2 {
		return math.Inf(1)
	}
	return o.minEdge
}

// distFast is the lazy backend's cache-hit query: a row lookup plus an
// LRU touch, no allocation. Cold misses fall through to the builder.
//
//determinlint:hotpath
func (o *LazyOracle) distFast(u, v int) (float64, bool) {
	o.mu.Lock()
	row := o.rows[rowKey{o.gen, int32(u)}]
	if row != nil {
		if p, ok := row.idx[int32(v)]; ok {
			d := row.dist[p]
			o.touch(row)
			o.mu.Unlock()
			return d, true
		}
	}
	o.mu.Unlock()
	return 0, false
}

// Dist returns d(u, v) with source-u summation order.
func (o *LazyOracle) Dist(u, v int) float64 {
	if d, ok := o.distFast(u, v); ok {
		return d
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	row := o.ensureNode(u, v)
	return row.dist[row.idx[int32(v)]]
}

// NextHop returns the neighbor of u on the canonical shortest path
// from u to v — u's parent in the tree rooted at v — or -1 if u == v.
// The row consulted is v's (target-rooted trees are column reads of
// the source-rooted rows).
func (o *LazyOracle) NextHop(u, v int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	row := o.ensureNode(v, u)
	return int(row.parent[row.idx[int32(u)]])
}

// Kth returns the k-th nearest node to u (k=0 is u itself).
func (o *LazyOracle) Kth(u, k int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	row := o.ensureCount(u, k+1)
	return int(row.nodes[row.ord[k]])
}

// RadiusOfSize returns r_u(size), the distance from u to its size-th
// nearest node.
func (o *LazyOracle) RadiusOfSize(u, size int) float64 {
	if size < 1 {
		return 0
	}
	if size > o.n {
		size = o.n
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	row := o.ensureCount(u, size)
	return row.dist[row.ord[size-1]]
}

// BallOfSize returns the first size entries of u's distance order.
func (o *LazyOracle) BallOfSize(u, size int) []int {
	return o.AppendBallOfSize(nil, u, size)
}

// AppendBallOfSize is BallOfSize appending into dst.
func (o *LazyOracle) AppendBallOfSize(dst []int, u, size int) []int {
	if size > o.n {
		size = o.n
	}
	if size < 1 {
		return dst
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	row := o.ensureCount(u, size)
	for i := 0; i < size; i++ {
		dst = append(dst, int(row.nodes[row.ord[i]]))
	}
	return dst
}

// Ball returns all nodes within distance r of u (inclusive), in
// increasing (distance, id) order.
func (o *LazyOracle) Ball(u int, r float64) []int {
	return o.AppendBall(nil, u, r)
}

// AppendBall is Ball appending into dst.
func (o *LazyOracle) AppendBall(dst []int, u int, r float64) []int {
	o.mu.Lock()
	defer o.mu.Unlock()
	row := o.ensureRadius(u, r)
	k := row.searchBeyond(r)
	for i := 0; i < k; i++ {
		dst = append(dst, int(row.nodes[row.ord[i]]))
	}
	return dst
}

// BallSize returns |B_u(r)|.
func (o *LazyOracle) BallSize(u int, r float64) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ensureRadius(u, r).searchBeyond(r)
}

// Nearest returns the member of set nearest to u, comparing the
// candidate-rooted distances Dist(v, u) with ties by least id.
func (o *LazyOracle) Nearest(u int, set []int) (int, float64) {
	best, bd := -1, math.Inf(1)
	for _, v := range set {
		d := o.Dist(v, u)
		//determinlint:allow floateq deliberate exact tie-break: nearest-by-(distance, id) must be bit-reproducible
		if d < bd || (d == bd && v < best) {
			best, bd = v, d
		}
	}
	return best, bd
}

// Eccentricity returns max_v d(u, v). It settles u's full row (one
// complete Dijkstra) — the lazy backend's substitute for the dense
// Diameter scan wherever a covering radius is needed.
func (o *LazyOracle) Eccentricity(u int) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	row := o.ensureRadius(u, math.Inf(1))
	return row.dist[row.ord[len(row.ord)-1]]
}

// PrefetchBalls warms the rows of the given sources out to radius r.
// Cold rows are built concurrently over internal/par — each worker
// owns a stride of the source list and its own builder — and installed
// into the cache serially in source order, so the cache transcript and
// every later answer are identical at any GOMAXPROCS.
func (o *LazyOracle) PrefetchBalls(sources []int, r float64) {
	o.mu.Lock()
	need := make([]int, 0, len(sources))
	for _, u := range sources {
		if row := o.rows[rowKey{o.gen, int32(u)}]; row == nil || !(row.complete || row.safeDist >= r) {
			need = append(need, u)
		}
	}
	gen := o.gen
	o.mu.Unlock()
	if len(need) == 0 {
		return
	}
	built := make([]*lazyRow, len(need))
	workers := par.SuggestedWorkers(len(need))
	// Worker w owns the stride {w, w+workers, ...} of `need` — each
	// built[i] is written by exactly one worker, and each row is a pure
	// function of (graph, source, r), so the result is schedule-free.
	par.For(workers, func(w int) {
		bld := newRowBuilder(o.n)
		for i := w; i < len(built); i += workers {
			//determinlint:allow parbody worker w owns the stride {w, w+workers, ...}: each built[i] has exactly one writer and rows are pure functions of (graph, source, r)
			built[i] = bld.run(o.g, need[i], gen, buildStop{radius: r, node: -1})
		}
	})
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.gen != gen {
		return // invalidated mid-build; drop the stale rows
	}
	for _, row := range built {
		old := o.rows[row.key]
		// Keep whichever row knows more; queries cannot tell the
		// difference, this only avoids discarding a wider row.
		if old != nil && (old.complete || old.safeDist >= row.safeDist) {
			continue
		}
		o.install(row, old)
	}
}

// --- cache internals (all called with mu held) ---

// touch moves row to the MRU end of the list.
func (o *LazyOracle) touch(row *lazyRow) {
	if o.head == row {
		return
	}
	// unlink
	if row.prev != nil {
		row.prev.next = row.next
	}
	if row.next != nil {
		row.next.prev = row.prev
	}
	if o.tail == row {
		o.tail = row.prev
	}
	// push front
	row.prev = nil
	row.next = o.head
	if o.head != nil {
		o.head.prev = row
	}
	o.head = row
	if o.tail == nil {
		o.tail = row
	}
}

// install replaces old (possibly nil) with row and evicts LRU rows
// beyond the entry budget, never evicting row itself.
func (o *LazyOracle) install(row *lazyRow, old *lazyRow) {
	if old != nil {
		o.remove(old)
	}
	o.rows[row.key] = row
	o.entries += len(row.nodes)
	row.prev, row.next = nil, o.head
	if o.head != nil {
		o.head.prev = row
	}
	o.head = row
	if o.tail == nil {
		o.tail = row
	}
	for o.entries > o.maxEnt && o.tail != nil && o.tail != row {
		o.remove(o.tail)
	}
}

// remove unlinks a row from the cache and the LRU list.
func (o *LazyOracle) remove(row *lazyRow) {
	delete(o.rows, row.key)
	o.entries -= len(row.nodes)
	if row.prev != nil {
		row.prev.next = row.next
	} else {
		o.head = row.next
	}
	if row.next != nil {
		row.next.prev = row.prev
	} else {
		o.tail = row.prev
	}
	row.prev, row.next = nil, nil
}

// row returns u's cached row or nil.
func (o *LazyOracle) row(u int) *lazyRow {
	row := o.rows[rowKey{o.gen, int32(u)}]
	if row != nil {
		o.touch(row)
	}
	return row
}

// rebuild replaces u's row with one built under the given stop
// condition.
func (o *LazyOracle) rebuild(u int, old *lazyRow, stop buildStop) *lazyRow {
	row := o.bld.run(o.g, u, o.gen, stop)
	o.install(row, old)
	return row
}

// ensureRadius returns u's row, complete through radius r.
func (o *LazyOracle) ensureRadius(u int, r float64) *lazyRow {
	row := o.row(u)
	if row != nil && (row.complete || row.safeDist >= r) {
		return row
	}
	want := r
	if row != nil && 2*row.safeDist > want {
		// Geometric growth: expanding a row re-runs its Dijkstra, so
		// at least double the known radius to amortize ladders of
		// slightly-growing queries.
		want = 2 * row.safeDist
	}
	return o.rebuild(u, row, buildStop{radius: want, node: -1})
}

// ensureCount returns u's row with its first k order entries exact
// (settled through distance ties at the k-th distance).
func (o *LazyOracle) ensureCount(u, k int) *lazyRow {
	if k > o.n {
		k = o.n
	}
	row := o.row(u)
	if row != nil && row.orderedPrefix(k) {
		return row
	}
	want := k
	if row != nil && 2*len(row.nodes) > want {
		want = 2 * len(row.nodes)
	}
	if want > o.n {
		want = o.n
	}
	return o.rebuild(u, row, buildStop{radius: math.Inf(1), count: want, node: -1})
}

// ensureNode returns u's row with v settled.
func (o *LazyOracle) ensureNode(u, v int) *lazyRow {
	row := o.row(u)
	if row != nil {
		if _, ok := row.idx[int32(v)]; ok {
			return row
		}
		if row.complete {
			// Connected graph: a complete row holds every node.
			return row
		}
	}
	return o.rebuild(u, row, buildStop{radius: math.Inf(1), node: v})
}

// orderedPrefix reports whether the first k order entries are exact:
// k settled entries exist and the k-th lies within the proven
// completeness radius (so no unsettled node could sort before or tie
// into the prefix).
func (r *lazyRow) orderedPrefix(k int) bool {
	if k > len(r.nodes) {
		return false
	}
	return r.complete || r.dist[r.ord[k-1]] <= r.safeDist
}

// searchBeyond returns the number of order entries at distance <= rad
// (callers guarantee completeness through rad).
func (r *lazyRow) searchBeyond(rad float64) int {
	return sort.Search(len(r.ord), func(i int) bool { return r.dist[r.ord[i]] > rad })
}

// --- truncated Dijkstra ---

// buildStop tells the row builder when it may stop settling:
//   - radius: settle every node at distance <= radius
//   - count (0 = none): settle at least count nodes, then flush
//     distance ties so the (distance, id) order prefix is exact
//   - node (-1 = none): settle through this node
//
// The builder may settle more than asked (it stops after the first
// pop that proves the conditions); the extra entries are identical to
// what any wider run would produce, so answers never depend on which
// query shaped the row.
type buildStop struct {
	radius float64
	count  int
	node   int
}

// rowBuilder holds the reusable single-source state for truncated
// Dijkstra runs. Epoch stamping makes resets O(touched), not O(n), so
// building a small ball costs ball-sized work.
type rowBuilder struct {
	dist   []float64
	parent []int32
	done   []bool
	stamp  []uint32
	epoch  uint32
	heap   pq
}

func newRowBuilder(n int) *rowBuilder {
	return &rowBuilder{
		dist:   make([]float64, n),
		parent: make([]int32, n),
		done:   make([]bool, n),
		stamp:  make([]uint32, n),
	}
}

// seen reports whether v has state in the current epoch, stamping it
// fresh (dist=+Inf, parent=-1, not done) if not.
func (b *rowBuilder) seen(v int) bool {
	if b.stamp[v] == b.epoch {
		return true
	}
	b.stamp[v] = b.epoch
	b.dist[v] = math.Inf(1)
	b.parent[v] = -1
	b.done[v] = false
	return false
}

// run executes one truncated Dijkstra from src. The relaxation —
// including the equal-distance min-id parent tie-break and the heap's
// (dist, owner, node) ordering — is exactly metric.Dijkstra's, so the
// settled prefix is byte-identical to the full run's: settled
// distances and parents are final the moment a node pops, and pops
// come off in nondecreasing distance, so any two runs from the same
// source agree on every node both settled.
//
// Each buildStop field is an independent stop requirement; the run
// settles until all requested requirements hold (a stop with no
// requirement — infinite radius, no count, no node — settles the
// whole graph).
func (b *rowBuilder) run(g *graph.Graph, src int, gen uint64, stop buildStop) *lazyRow {
	b.epoch++
	b.heap = b.heap[:0]
	b.seen(src)
	b.dist[src] = 0
	b.heap.push(pqItem{node: src, dist: 0, owner: -1})

	row := &lazyRow{key: rowKey{gen, int32(src)}}
	n := g.N()
	wantRadius := !math.IsInf(stop.radius, 1)
	lastDist := 0.0
	for len(b.heap) > 0 {
		it := b.heap.pop()
		v := it.node
		if b.done[v] {
			continue
		}
		b.done[v] = true
		lastDist = it.dist
		row.nodes = append(row.nodes, int32(v))
		row.dist = append(row.dist, it.dist)
		row.parent = append(row.parent, b.parent[v])
		for _, e := range g.Neighbors(v) {
			w := e.To
			nd := it.dist + e.Weight
			b.seen(w)
			//determinlint:allow floateq deliberate exact tie-break: must match Dijkstra's equal-distance min-id parent rule bit for bit
			if nd < b.dist[w] || (nd == b.dist[w] && !b.done[w] && (b.parent[w] == -1 || int32(v) < b.parent[w])) {
				b.dist[w] = nd
				b.parent[w] = int32(v)
				b.heap.push(pqItem{node: w, dist: nd, owner: v})
			}
		}
		if len(row.nodes) == n {
			break
		}
		if !wantRadius && stop.count <= 0 && stop.node < 0 {
			continue // no early-stop requirement: settle everything
		}
		if (!wantRadius || it.dist > stop.radius) &&
			(stop.count <= 0 || len(row.nodes) >= stop.count) &&
			(stop.node < 0 || b.settledNode(stop.node)) &&
			b.nextLiveDist() > lastDist {
			// The tie-flush gate (nextLiveDist > lastDist) makes the
			// settled set closed under distance equality, so the
			// (distance, id) re-sort below is an exact prefix of the
			// full order row through safeDist inclusive.
			break
		}
	}
	if len(row.nodes) == n {
		row.complete = true
		row.safeDist = lastDist
	} else {
		// All nodes at distance <= lastDist settled (the loop only
		// breaks after flushing distance ties at lastDist).
		row.safeDist = lastDist
	}
	row.idx = make(map[int32]int32, len(row.nodes))
	for i, v := range row.nodes {
		row.idx[v] = int32(i)
	}
	row.ord = make([]int32, len(row.nodes))
	for i := range row.ord {
		row.ord[i] = int32(i)
	}
	sort.Slice(row.ord, func(i, j int) bool {
		di, dj := row.dist[row.ord[i]], row.dist[row.ord[j]]
		//determinlint:allow floateq deliberate exact tie-break: (distance, id) ordering must be bit-reproducible
		if di != dj {
			return di < dj
		}
		return row.nodes[row.ord[i]] < row.nodes[row.ord[j]]
	})
	return row
}

// nextLiveDist returns the distance of the nearest unsettled heap
// entry (+Inf when none), discarding dead entries on the way.
func (b *rowBuilder) nextLiveDist() float64 {
	for len(b.heap) > 0 {
		if b.done[b.heap[0].node] {
			b.heap.pop()
			continue
		}
		return b.heap[0].dist
	}
	return math.Inf(1)
}

// settledNode reports whether v has been settled this run.
func (b *rowBuilder) settledNode(v int) bool {
	return b.stamp[v] == b.epoch && b.done[v]
}
