package metric

import (
	"fmt"
	"sort"

	"compactrouting/internal/par"
)

// RestoreAPSP rebuilds an APSP oracle from its serialized matrices
// (dist and nextHop, both row-major [u*n+v]) without re-running any
// Dijkstra. The per-node distance orders are re-derived with exactly
// the sort NewAPSP uses (distance, ties by node id), so a restored
// oracle is indistinguishable from a freshly built one.
//
// The slices are retained, not copied.
func RestoreAPSP(n int, dist []float64, nextHop []int32) (*APSP, error) {
	if n < 1 {
		return nil, fmt.Errorf("metric: restore with n=%d", n)
	}
	if len(dist) != n*n || len(nextHop) != n*n {
		return nil, fmt.Errorf("metric: restore matrices have %d/%d entries, want %d", len(dist), len(nextHop), n*n)
	}
	a := &APSP{
		n:       n,
		dist:    dist,
		nextHop: nextHop,
		order:   make([]int32, n*n),
	}
	par.For(n, func(u int) {
		perm := a.order[u*n : (u+1)*n]
		for i := range perm {
			perm[i] = int32(i)
		}
		row := a.dist[u*n : (u+1)*n]
		sort.Slice(perm, func(i, j int) bool {
			di, dj := row[perm[i]], row[perm[j]]
			//determinlint:allow floateq deliberate exact tie-break: (distance, id) ordering must be bit-reproducible
			if di != dj {
				return di < dj
			}
			return perm[i] < perm[j]
		})
	})
	return a, nil
}

// Matrices exposes the serializable state of the oracle: the distance
// and next-hop matrices, row-major. The returned slices alias the
// oracle's internal storage; callers must not mutate them.
func (a *APSP) Matrices() (dist []float64, nextHop []int32) {
	return a.dist, a.nextHop
}
