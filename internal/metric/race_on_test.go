//go:build race

package metric

// raceEnabled scales down the Internet-size peak-allocation test under
// the race detector, whose ~10× instrumentation cost would dominate
// the make-race gate at n=100,000. The shrunken size keeps the n×n
// assertion crisp: the dense matrix it guards against is still 16×
// the allowed heap growth.
const raceEnabled = true
