package metric

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"compactrouting/internal/graph"
)

// fuzzGraph deterministically builds a small connected graph from fuzz
// bytes: a weighted path 0—1—…—(n-1) guarantees connectivity, then the
// remaining bytes add chords in triples (endpoint, endpoint, weight).
// Weights are quantized to 1 + k/8 so duplicate edges exercise the
// builder's min-weight rule without float surprises.
func fuzzGraph(data []byte) (*graph.Graph, int, bool) {
	if len(data) < 4 {
		return nil, 0, false
	}
	n := 2 + int(data[0])%31
	b := graph.NewBuilder(n)
	w := func(raw byte) float64 { return 1 + float64(raw&0x3f)/8 }
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(i, i+1, w(data[1+i%(len(data)-1)])); err != nil {
			return nil, 0, false
		}
	}
	for i := 4; i+2 < len(data); i += 3 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v, w(data[i+2])); err != nil {
			return nil, 0, false
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, 0, false
	}
	return g, n, true
}

// fuzzLazySeeds is the checked-in corpus: a bare path, a path with one
// chord, heavy chording (duplicate edges hit the min-weight rule), a
// two-node graph, and a triangle-dense blob — the shapes that drove
// the ball/eviction edge cases during development.
func fuzzLazySeeds() [][]byte {
	return [][]byte{
		{8, 3, 4, 1},
		{12, 7, 2, 1, 0, 5, 9},
		{31, 200, 16, 2, 1, 2, 3, 1, 2, 63, 1, 2, 0, 4, 4, 40, 5, 6, 7},
		{0, 0, 1, 255},
		{16, 9, 8, 3, 0, 8, 17, 8, 0, 33, 15, 1, 12, 3, 14, 2},
	}
}

// TestRegenFuzzCorpus rewrites the checked-in seed corpus. Regenerate:
//
//	REGEN_FUZZ_CORPUS=1 go test ./internal/... -run TestRegenFuzzCorpus
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz seed corpora")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzLazyBall")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, data := range fuzzLazySeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%03d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzLazyBall differentially fuzzes the lazy backend against the
// dense one: the input bytes choose a graph, a source, a ball size,
// and a deliberately tiny cache budget, and every ball/radius/distance
// answer must match the dense oracle bit for bit — including answers
// recomputed after the tiny cache has evicted and re-derived the row.
func FuzzLazyBall(f *testing.F) {
	for _, data := range fuzzLazySeeds() {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, n, ok := fuzzGraph(data)
		if !ok {
			return
		}
		u := int(data[1]) % n
		size := 1 + int(data[2])%n
		maxEnt := 1 + int(data[3])
		dense := NewAPSP(g)
		lazy := NewLazyOracleOpts(g, LazyOpts{MaxEntries: maxEnt})
		r := dense.RadiusOfSize(u, size)
		if lr := lazy.RadiusOfSize(u, size); !eqBits(r, lr) {
			t.Fatalf("RadiusOfSize(%d,%d): dense %v lazy %v", u, size, r, lr)
		}
		if !intsEqual(dense.BallOfSize(u, size), lazy.BallOfSize(u, size)) {
			t.Fatalf("BallOfSize(%d,%d) differs", u, size)
		}
		// Sweep radii just below, at, and above the size-r radius: the
		// boundary is where the tie-flush gate earns its keep.
		for _, rr := range []float64{r * 0.99, r, r * 1.01, r * 2} {
			if !intsEqual(dense.Ball(u, rr), lazy.Ball(u, rr)) {
				t.Fatalf("Ball(%d,%g) differs", u, rr)
			}
			if ds, ls := dense.BallSize(u, rr), lazy.BallSize(u, rr); ds != ls {
				t.Fatalf("BallSize(%d,%g): dense %d lazy %d", u, rr, ds, ls)
			}
		}
		// Full row from u, then a second source to force eviction at
		// tiny budgets, then u again: the re-derived row must agree.
		for _, src := range []int{u, (u + n/2) % n, u} {
			for v := 0; v < n; v++ {
				if dd, ld := dense.Dist(src, v), lazy.Dist(src, v); !eqBits(dd, ld) {
					t.Fatalf("Dist(%d,%d): dense %v lazy %v", src, v, dd, ld)
				}
			}
			if dh, lh := dense.NextHop(src, (src+1)%n), lazy.NextHop(src, (src+1)%n); dh != lh {
				t.Fatalf("NextHop(%d,%d): dense %d lazy %d", src, (src+1)%n, dh, lh)
			}
		}
	})
}
