package metric

import (
	"math"
	"math/rand"
	"testing"

	"compactrouting/internal/graph"
)

func mustGrid(t *testing.T, r, c int) *graph.Graph {
	t.Helper()
	g, err := graph.Grid(r, c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDijkstraGrid(t *testing.T) {
	g := mustGrid(t, 4, 4)
	spt := Dijkstra(g, 0)
	// Distance on a unit grid is Manhattan distance.
	for v := 0; v < g.N(); v++ {
		want := float64(v/4 + v%4)
		if spt.Dist[v] != want {
			t.Errorf("dist(0,%d) = %v, want %v", v, spt.Dist[v], want)
		}
	}
	if spt.Parent[0] != -1 {
		t.Fatalf("source parent = %d, want -1", spt.Parent[0])
	}
	// Walking parents from any node must reach the source with
	// decreasing distance.
	for v := 1; v < g.N(); v++ {
		path := spt.PathTo(v)
		if path[len(path)-1] != 0 {
			t.Fatalf("PathTo(%d) does not end at source: %v", v, path)
		}
		for i := 0; i+1 < len(path); i++ {
			w, ok := g.EdgeWeight(path[i], path[i+1])
			if !ok {
				t.Fatalf("PathTo(%d) uses non-edge %d-%d", v, path[i], path[i+1])
			}
			if math.Abs(spt.Dist[path[i]]-spt.Dist[path[i+1]]-w) > 1e-9 {
				t.Fatalf("PathTo(%d): edge %d-%d not on shortest path", v, path[i], path[i+1])
			}
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// Triangle where the two-hop route is shorter than the direct edge.
	b := graph.NewBuilder(3)
	for _, e := range []struct {
		u, v int
		w    float64
	}{{0, 1, 1}, {1, 2, 1}, {0, 2, 5}} {
		if err := b.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	spt := Dijkstra(g, 0)
	if spt.Dist[2] != 2 {
		t.Fatalf("dist(0,2) = %v, want 2", spt.Dist[2])
	}
	if spt.Parent[2] != 1 {
		t.Fatalf("parent(2) = %d, want 1", spt.Parent[2])
	}
}

func TestAPSPAgreesWithDijkstra(t *testing.T) {
	g, _, err := graph.RandomGeometric(120, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAPSP(g)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		s := rng.Intn(g.N())
		spt := Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			if math.Abs(a.Dist(v, s)-spt.Dist[v]) > 1e-9 {
				t.Fatalf("Dist(%d,%d) = %v, Dijkstra says %v", v, s, a.Dist(v, s), spt.Dist[v])
			}
		}
	}
}

func TestAPSPSymmetric(t *testing.T) {
	g, _, err := graph.RandomGeometric(80, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAPSP(g)
	for u := 0; u < a.N(); u++ {
		for v := u + 1; v < a.N(); v++ {
			if math.Abs(a.Dist(u, v)-a.Dist(v, u)) > 1e-9 {
				t.Fatalf("asymmetric: d(%d,%d)=%v d(%d,%d)=%v", u, v, a.Dist(u, v), v, u, a.Dist(v, u))
			}
		}
	}
}

func TestNextHopMakesProgress(t *testing.T) {
	g := mustGrid(t, 5, 5)
	a := NewAPSP(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				if a.NextHop(u, v) != -1 {
					t.Fatalf("NextHop(%d,%d) = %d, want -1", u, v, a.NextHop(u, v))
				}
				continue
			}
			h := a.NextHop(u, v)
			w, ok := g.EdgeWeight(u, h)
			if !ok {
				t.Fatalf("NextHop(%d,%d) = %d is not a neighbor", u, v, h)
			}
			if math.Abs(w+a.Dist(h, v)-a.Dist(u, v)) > 1e-9 {
				t.Fatalf("NextHop(%d,%d) = %d is not on a shortest path", u, v, h)
			}
		}
	}
}

func TestOrderAndRadii(t *testing.T) {
	g := mustGrid(t, 4, 4)
	a := NewAPSP(g)
	for u := 0; u < g.N(); u++ {
		if a.Kth(u, 0) != u {
			t.Fatalf("Kth(%d,0) = %d, want self", u, a.Kth(u, 0))
		}
		prev := -1.0
		for k := 0; k < g.N(); k++ {
			d := a.Dist(u, a.Kth(u, k))
			if d < prev {
				t.Fatalf("order of %d not sorted at k=%d", u, k)
			}
			prev = d
		}
	}
	// Corner node 0 of a 4x4 grid: sizes 1,2,3 are at distances 0,1,1.
	if r := a.RadiusOfSize(0, 1); r != 0 {
		t.Fatalf("RadiusOfSize(0,1) = %v, want 0", r)
	}
	if r := a.RadiusOfSize(0, 3); r != 1 {
		t.Fatalf("RadiusOfSize(0,3) = %v, want 1", r)
	}
	if r := a.RadiusOfSize(0, 100); r != a.Dist(0, 15) {
		t.Fatalf("RadiusOfSize clamps to n: got %v", r)
	}
}

func TestBallConsistency(t *testing.T) {
	g, _, err := graph.RandomGeometric(100, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAPSP(g)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		u := rng.Intn(a.N())
		r := rng.Float64() * a.Diameter()
		ball := a.Ball(u, r)
		if len(ball) != a.BallSize(u, r) {
			t.Fatalf("Ball/BallSize disagree at u=%d r=%v", u, r)
		}
		inBall := make(map[int]bool, len(ball))
		for _, v := range ball {
			if a.Dist(u, v) > r {
				t.Fatalf("node %d in Ball(%d,%v) at distance %v", v, u, r, a.Dist(u, v))
			}
			inBall[v] = true
		}
		for v := 0; v < a.N(); v++ {
			if !inBall[v] && a.Dist(u, v) <= r {
				t.Fatalf("node %d missing from Ball(%d,%v)", v, u, r)
			}
		}
	}
}

func TestBallOfSize(t *testing.T) {
	g := mustGrid(t, 3, 3)
	a := NewAPSP(g)
	b := a.BallOfSize(4, 5) // center of 3x3 grid: self + 4 neighbors
	if len(b) != 5 || b[0] != 4 {
		t.Fatalf("BallOfSize(4,5) = %v", b)
	}
	for _, v := range b[1:] {
		if a.Dist(4, v) != 1 {
			t.Fatalf("BallOfSize(4,5) contains %v at distance %v", v, a.Dist(4, v))
		}
	}
	if got := a.BallOfSize(0, 1000); len(got) != 9 {
		t.Fatalf("BallOfSize clamps to n: len=%d", len(got))
	}
}

func TestNearest(t *testing.T) {
	g := mustGrid(t, 3, 3)
	a := NewAPSP(g)
	v, d := a.Nearest(0, []int{8, 2, 6})
	if v != 2 || d != 2 {
		t.Fatalf("Nearest = %d,%v want 2,2", v, d)
	}
	// Tie between 2 and 6 (both at distance 2): smaller id wins.
	v, _ = a.Nearest(0, []int{6, 2})
	if v != 2 {
		t.Fatalf("tie broken to %d, want 2", v)
	}
	v, d = a.Nearest(0, nil)
	if v != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty Nearest = %d,%v", v, d)
	}
}

func TestDiameterAndNormalized(t *testing.T) {
	g, err := graph.Path(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAPSP(g)
	if a.Diameter() != 8 {
		t.Fatalf("Diameter = %v, want 8", a.Diameter())
	}
	if a.MinPairDistance() != 2 {
		t.Fatalf("MinPairDistance = %v, want 2", a.MinPairDistance())
	}
	if a.NormalizedDiameter() != 4 {
		t.Fatalf("NormalizedDiameter = %v, want 4", a.NormalizedDiameter())
	}
}

func TestVoronoiPartition(t *testing.T) {
	g := mustGrid(t, 6, 6)
	a := NewAPSP(g)
	centers := []int{0, 35, 17}
	owner, dist, parent := Voronoi(g, centers)
	for v := 0; v < g.N(); v++ {
		if owner[v] < 0 {
			t.Fatalf("node %d unassigned", v)
		}
		c := centers[owner[v]]
		if math.Abs(dist[v]-a.Dist(v, c)) > 1e-9 {
			t.Fatalf("node %d: voronoi dist %v != metric dist %v", v, dist[v], a.Dist(v, c))
		}
		// Owner must minimize (distance, center id).
		for _, c2 := range centers {
			d2 := a.Dist(v, c2)
			if d2 < dist[v] || (d2 == dist[v] && c2 < c) {
				t.Fatalf("node %d assigned to %d but %d is better", v, c, c2)
			}
		}
	}
	// Each cell is connected via the parent forest and parents stay
	// within the cell.
	for v := 0; v < g.N(); v++ {
		steps := 0
		for x := v; parent[x] != -1; x = parent[x] {
			if owner[parent[x]] != owner[v] {
				t.Fatalf("parent chain of %d leaves its cell", v)
			}
			if steps++; steps > g.N() {
				t.Fatalf("parent chain of %d does not terminate", v)
			}
		}
	}
	for i, c := range centers {
		if owner[c] != i || parent[c] != -1 {
			t.Fatalf("center %d mis-assigned: owner=%d parent=%d", c, owner[c], parent[c])
		}
	}
}

func TestVoronoiSingleCenter(t *testing.T) {
	g := mustGrid(t, 4, 4)
	owner, dist, _ := Voronoi(g, []int{5})
	spt := Dijkstra(g, 5)
	for v := 0; v < g.N(); v++ {
		if owner[v] != 0 {
			t.Fatalf("owner[%d] = %d", v, owner[v])
		}
		if math.Abs(dist[v]-spt.Dist[v]) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], spt.Dist[v])
		}
	}
}

func TestDoublingDimensionSmallOnLine(t *testing.T) {
	g, err := graph.Path(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAPSP(g)
	alpha := EstimateDoublingDimension(a, 0, 0)
	// Line metrics have doubling dimension 1; greedy may up to double it
	// and discretization adds a little slack.
	if alpha > 2.1 {
		t.Fatalf("line doubling estimate %v too large", alpha)
	}
	if alpha < 0.9 {
		t.Fatalf("line doubling estimate %v too small", alpha)
	}
}

func TestDoublingDimensionGrid(t *testing.T) {
	g := mustGrid(t, 12, 12)
	a := NewAPSP(g)
	alpha := EstimateDoublingDimension(a, 200, 4)
	// Planar grid: dimension ~2, greedy estimate at most ~4-ish.
	if alpha > 5 {
		t.Fatalf("grid doubling estimate %v too large", alpha)
	}
}

func TestGreedyCoverCountWholeBall(t *testing.T) {
	g := mustGrid(t, 4, 4)
	a := NewAPSP(g)
	// Radius so small the ball is a single node: one ball suffices.
	if c := GreedyCoverCount(a, 0, 0); c != 1 {
		t.Fatalf("cover count at r=0 is %d, want 1", c)
	}
}
