package metric

import (
	"math"
	"sort"

	"compactrouting/internal/graph"
	"compactrouting/internal/par"
)

// APSP holds all-pairs shortest-path data: the full distance matrix,
// per-target next hops, and for every node the list of all nodes sorted
// by distance from it (ties by node id). The sorted orders realize the
// paper's ball machinery: the "ball of size k around u" is the first k
// entries of u's order, and r_u(j) is the distance of entry 2^j - 1.
//
// Orientation: row u holds the source-rooted Dijkstra run from u, so
// Dist(u, v) carries u's summation order — exactly the bytes one
// truncated Dijkstra from u produces, which is what lets the dense and
// lazy backends agree bit for bit (see Distancer). NextHop(u, v) stays
// target-rooted: it is u's parent in the canonical tree rooted at v,
// i.e. column u of v's run, so every node along a route agrees on one
// tree toward the destination.
//
// APSP is the preprocessing oracle: schemes consult it while compiling
// routing tables, never while routing.
type APSP struct {
	n       int
	dist    []float64 // dist[u*n+v] = Dijkstra(g,u).Dist[v]
	nextHop []int32   // nextHop[u*n+v] = Dijkstra(g,v).Parent[u]; -1 if u==v
	order   []int32   // order[u*n+k] = k-th nearest node to u (order[u*n] == u)
}

// NewAPSP runs Dijkstra from every node and builds the oracle.
// It costs O(n·m·log n) time and O(n²) memory; the single-source runs
// and the per-node distance sorts are spread over all CPUs.
func NewAPSP(g *graph.Graph) *APSP {
	n := g.N()
	a := &APSP{
		n:       n,
		dist:    make([]float64, n*n),
		nextHop: make([]int32, n*n),
		order:   make([]int32, n*n),
	}
	par.For(n, func(u int) {
		spt := Dijkstra(g, u)
		// Iteration u owns dist row u and nextHop column u: spt.Dist is
		// the distance row of source u, spt.Parent[v] is v's next hop
		// toward u (column u of the next-hop matrix).
		copy(a.dist[u*n:(u+1)*n], spt.Dist)
		for v := 0; v < n; v++ {
			a.nextHop[v*n+u] = int32(spt.Parent[v])
		}
	})
	par.For(n, func(u int) {
		perm := a.order[u*n : (u+1)*n]
		for i := range perm {
			perm[i] = int32(i)
		}
		row := a.dist[u*n : (u+1)*n]
		sort.Slice(perm, func(i, j int) bool {
			di, dj := row[perm[i]], row[perm[j]]
			//determinlint:allow floateq deliberate exact tie-break: (distance, id) ordering must be bit-reproducible
			if di != dj {
				return di < dj
			}
			return perm[i] < perm[j]
		})
	})
	return a
}

// N returns the number of nodes.
func (a *APSP) N() int { return a.n }

// Dist returns d(u, v).
func (a *APSP) Dist(u, v int) float64 { return a.dist[u*a.n+v] }

// NextHop returns the neighbor of u on a canonical shortest path from u
// to v, or -1 if u == v.
func (a *APSP) NextHop(u, v int) int { return int(a.nextHop[u*a.n+v]) }

// Kth returns the k-th nearest node to u (k=0 is u itself).
func (a *APSP) Kth(u, k int) int { return int(a.order[u*a.n+k]) }

// RadiusOfSize returns r_u(size): the distance from u to its size-th
// nearest node (so the ball of that radius holds at least size nodes).
// RadiusOfSize(u, 1) == 0.
func (a *APSP) RadiusOfSize(u, size int) float64 {
	if size < 1 {
		return 0
	}
	if size > a.n {
		size = a.n
	}
	return a.dist[u*a.n+int(a.order[u*a.n+size-1])]
}

// BallOfSize returns the first size entries of u's distance order: the
// canonical "ball of size exactly size around u" used wherever the paper
// assumes |B_u(r_u(j))| = 2^j (ties are resolved by node id).
func (a *APSP) BallOfSize(u, size int) []int {
	return a.AppendBallOfSize(nil, u, size)
}

// AppendBallOfSize is BallOfSize appending into dst, so hot loops can
// reuse one buffer instead of allocating per call.
func (a *APSP) AppendBallOfSize(dst []int, u, size int) []int {
	if size > a.n {
		size = a.n
	}
	for i := 0; i < size; i++ {
		dst = append(dst, int(a.order[u*a.n+i]))
	}
	return dst
}

// Ball returns all nodes within distance r of u, i.e. B_u(r), in
// increasing distance order.
func (a *APSP) Ball(u int, r float64) []int {
	return a.AppendBall(nil, u, r)
}

// AppendBall is Ball appending into dst: the scheme constructors call
// it once per (node, level) in their hottest loops, reusing a per-node
// scratch buffer instead of allocating a fresh slice each time.
func (a *APSP) AppendBall(dst []int, u int, r float64) []int {
	row := a.order[u*a.n : (u+1)*a.n]
	dr := a.dist[u*a.n : (u+1)*a.n]
	k := sort.Search(a.n, func(i int) bool { return dr[row[i]] > r })
	for i := 0; i < k; i++ {
		dst = append(dst, int(row[i]))
	}
	return dst
}

// BallSize returns |B_u(r)|.
func (a *APSP) BallSize(u int, r float64) int {
	row := a.order[u*a.n : (u+1)*a.n]
	dr := a.dist[u*a.n : (u+1)*a.n]
	return sort.Search(a.n, func(i int) bool { return dr[row[i]] > r })
}

// Nearest returns the node of set nearest to u, breaking ties by node
// id, together with its distance. The comparison reads Dist(v, u) for
// each candidate v — candidate-rooted, so the bytes compared are the
// candidates' own Dijkstra rows (the direction both backends share).
// It returns (-1, +Inf) for an empty set.
func (a *APSP) Nearest(u int, set []int) (int, float64) {
	best, bd := -1, math.Inf(1)
	for _, v := range set {
		d := a.Dist(v, u)
		//determinlint:allow floateq deliberate exact tie-break: nearest-by-(distance, id) must be bit-reproducible
		if d < bd || (d == bd && v < best) {
			best, bd = v, d
		}
	}
	return best, bd
}

// Eccentricity returns max_v d(u, v), the distance from u to the node
// farthest from it.
func (a *APSP) Eccentricity(u int) float64 {
	// The farthest node from u is the last entry of u's order.
	return a.dist[u*a.n+int(a.order[u*a.n+a.n-1])]
}

// Diameter returns the largest pairwise distance.
func (a *APSP) Diameter() float64 {
	max := 0.0
	for u := 0; u < a.n; u++ {
		if d := a.Eccentricity(u); d > max {
			max = d
		}
	}
	return max
}

// MinPairDistance returns the smallest nonzero pairwise distance.
func (a *APSP) MinPairDistance() float64 {
	min := math.Inf(1)
	for u := 0; u < a.n; u++ {
		if a.n < 2 {
			break
		}
		d := a.dist[u*a.n+int(a.order[u*a.n+1])]
		if d > 0 && d < min {
			min = d
		}
	}
	return min
}

// NormalizedDiameter returns Delta = max pair distance / min pair
// distance, the paper's normalized diameter. Returns 1 for n < 2.
func (a *APSP) NormalizedDiameter() float64 {
	if a.n < 2 {
		return 1
	}
	return a.Diameter() / a.MinPairDistance()
}
