package metric

import (
	"math"
	"testing"
	"testing/quick"

	"compactrouting/internal/graph"
)

// quickGraph builds a small random geometric graph from a seed.
func quickGraph(seed uint16) *graph.Graph {
	g, _, err := graph.RandomGeometric(40+int(seed%40), 0.3, int64(seed))
	if err != nil {
		// Extremely unlikely at radius 0.3; surface as a tiny fallback.
		g2, _ := graph.Path(10, 1)
		return g2
	}
	return g
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed uint16, a, b, c uint8) bool {
		g := quickGraph(seed)
		ap := NewAPSP(g)
		n := g.N()
		x, y, z := int(a)%n, int(b)%n, int(c)%n
		return ap.Dist(x, z) <= ap.Dist(x, y)+ap.Dist(y, z)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSymmetryAndIdentity(t *testing.T) {
	f := func(seed uint16, a, b uint8) bool {
		g := quickGraph(seed)
		ap := NewAPSP(g)
		n := g.N()
		x, y := int(a)%n, int(b)%n
		if ap.Dist(x, x) != 0 {
			return false
		}
		if math.Abs(ap.Dist(x, y)-ap.Dist(y, x)) > 1e-9 {
			return false
		}
		return x == y || ap.Dist(x, y) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNextHopDecreasesDistance(t *testing.T) {
	f := func(seed uint16, a, b uint8) bool {
		g := quickGraph(seed)
		ap := NewAPSP(g)
		n := g.N()
		x, y := int(a)%n, int(b)%n
		for x != y {
			h := ap.NextHop(x, y)
			if ap.Dist(h, y) >= ap.Dist(x, y) {
				return false
			}
			x = h
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRadiusMonotoneInSize(t *testing.T) {
	f := func(seed uint16, a uint8) bool {
		g := quickGraph(seed)
		ap := NewAPSP(g)
		u := int(a) % g.N()
		prev := -1.0
		for size := 1; size <= g.N(); size++ {
			r := ap.RadiusOfSize(u, size)
			if r < prev {
				return false
			}
			// The ball of that radius must actually hold >= size nodes.
			if ap.BallSize(u, r) < size {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVoronoiOwnersMinimize(t *testing.T) {
	f := func(seed uint16, c1, c2, c3 uint8) bool {
		g := quickGraph(seed)
		ap := NewAPSP(g)
		n := g.N()
		centers := []int{int(c1) % n}
		if x := int(c2) % n; x != centers[0] {
			centers = append(centers, x)
		}
		if x := int(c3) % n; x != centers[0] && (len(centers) < 2 || x != centers[1]) {
			centers = append(centers, x)
		}
		owner, dist, _ := Voronoi(g, centers)
		for v := 0; v < n; v++ {
			c := centers[owner[v]]
			if math.Abs(dist[v]-ap.Dist(v, c)) > 1e-9 {
				return false
			}
			for _, c2 := range centers {
				if ap.Dist(v, c2) < dist[v]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
