package metric

import (
	"runtime"
	"testing"

	"compactrouting/internal/graph"
)

// TestLazyNoQuadraticAllocation is the APSP-wall regression test: a
// LazyOracle at n=100,000 serving a representative query mix — a full
// eccentricity row, size- and radius-balls around scattered sources,
// point distances — must stay far below the footprint of a single
// dense n×n matrix (8·n² = 80 GB for Dist alone; NewAPSP at this size
// is simply not constructible). The 1 GB ceiling is ~80× slack over
// the observed working set and ~80× under the matrix, so it trips on
// any reintroduced quadratic allocation while staying insensitive to
// GC timing. Under the race detector the size drops to 20,000 (and
// the ceiling to 256 MB — the guarded-against matrix is still 3.2 GB)
// so the instrumented run stays in budget.
func TestLazyNoQuadraticAllocation(t *testing.T) {
	n, ceiling := 100_000, uint64(1<<30)
	if raceEnabled {
		n, ceiling = 20_000, 256<<20
	}
	g, err := graph.PowerLaw(n, 2, 1024, 9)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	o := NewLazyOracle(g)
	// One full row (the most expensive single query), then ball sweeps
	// around strided sources at radii spanning the distance scale.
	ecc := o.Eccentricity(0)
	for u := 0; u < n; u += n / 64 {
		for _, frac := range []float64{0.01, 0.1, 0.5} {
			if got := o.BallSize(u, ecc*frac); got < 1 {
				t.Fatalf("BallSize(%d, %g) = %d", u, ecc*frac, got)
			}
		}
		if len(o.BallOfSize(u, 256)) != 256 {
			t.Fatalf("BallOfSize(%d, 256) short", u)
		}
		if d := o.Dist(u, (u+n/2)%n); d <= 0 {
			t.Fatalf("Dist(%d,%d) = %v", u, (u+n/2)%n, d)
		}
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if used := after.HeapAlloc - before.HeapAlloc; used > ceiling {
		t.Fatalf("lazy oracle workload grew the heap by %d MB at n=%d; a dense matrix would need %d MB — quadratic allocation reintroduced?",
			used>>20, n, uint64(n)*uint64(n)*8>>20)
	}
	// The row cache must also have respected its budget: default is
	// max(8n, 64Ki) settled entries, never all n rows.
	if budget := defaultLazyEntries(n); o.CachedEntries() > budget {
		t.Fatalf("cache holds %d entries, budget %d", o.CachedEntries(), budget)
	}
}
