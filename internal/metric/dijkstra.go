// Package metric computes the shortest-path metric of a weighted graph
// and the metric-space primitives the paper's constructions consume:
// balls B_u(r), ball-size radii r_u(j), nearest-point queries, Voronoi
// partitions with consistent tie-breaking, normalized diameter, and a
// greedy doubling-dimension estimator.
package metric

import (
	"math"

	"compactrouting/internal/graph"
)

// SPT is a single-source shortest-path tree.
//
// Parent[v] is the neighbor of v on a shortest path from v toward Source
// (-1 for the source itself), so Parent doubles as the per-node next-hop
// table "toward Source". Ties are broken deterministically: among equal-
// distance relaxations the edge from the smaller-id parent wins, so all
// nodes agree on one canonical tree.
type SPT struct {
	Source int
	Dist   []float64
	Parent []int
}

// pqItem is an entry of the binary heap used by Dijkstra.
type pqItem struct {
	node int
	dist float64
	// owner orders equal-distance entries; single-source Dijkstra uses
	// the parent id, multi-source Voronoi uses the center id.
	owner int
}

type pq []pqItem

func (h *pq) push(it pqItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *pq) pop() pqItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		c := l
		if r < last && less(old[r], old[l]) {
			c = r
		}
		if !less(old[c], old[i]) {
			break
		}
		old[i], old[c] = old[c], old[i]
		i = c
	}
	return top
}

func less(a, b pqItem) bool {
	//determinlint:allow floateq deliberate exact tie-break: heap order falls through to (owner, node) ids on equal distances
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.owner != b.owner {
		return a.owner < b.owner
	}
	return a.node < b.node
}

// Dijkstra computes the shortest-path tree from src.
func Dijkstra(g *graph.Graph, src int) *SPT {
	n := g.N()
	dist := make([]float64, n)
	parent := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[src] = 0
	h := make(pq, 0, n)
	h.push(pqItem{node: src, dist: 0, owner: -1})
	for len(h) > 0 {
		it := h.pop()
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, e := range g.Neighbors(v) {
			nd := it.dist + e.Weight
			w := e.To
			//determinlint:allow floateq deliberate exact tie-break: equal-distance relaxations keep the min-id parent bit for bit
			if nd < dist[w] || (nd == dist[w] && !done[w] && (parent[w] == -1 || v < parent[w])) {
				dist[w] = nd
				parent[w] = v
				h.push(pqItem{node: w, dist: nd, owner: v})
			}
		}
	}
	return &SPT{Source: src, Dist: dist, Parent: parent}
}

// PathTo returns the node sequence of the tree path from v to the source
// (inclusive on both ends).
func (t *SPT) PathTo(v int) []int {
	var path []int
	for v != -1 {
		path = append(path, v)
		v = t.Parent[v]
	}
	return path
}

// Voronoi computes the graph Voronoi partition for the given centers.
//
// Each node is assigned to the center minimizing (distance, center id)
// lexicographically — the consistent tie-breaking the paper's Voronoi
// cells V(c,j) require. The returned parent forest contains, for each
// node, its neighbor on a shortest path toward its owning center, and
// each Voronoi cell is connected in that forest (a shortest-path tree
// per cell, rooted at the center).
//
// owner holds the center's index within centers, dist the distance to
// it, and parent the tree edge (-1 at centers).
func Voronoi(g *graph.Graph, centers []int) (owner []int, dist []float64, parent []int) {
	n := g.N()
	owner = make([]int, n)
	dist = make([]float64, n)
	parent = make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		owner[i] = -1
		parent[i] = -1
	}
	h := make(pq, 0, n)
	for idx, c := range centers {
		// If duplicate centers are passed, the first (smallest idx) wins.
		if dist[c] == 0 {
			continue
		}
		dist[c] = 0
		owner[c] = idx
		h.push(pqItem{node: c, dist: 0, owner: centers[idx]})
	}
	for len(h) > 0 {
		it := h.pop()
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, e := range g.Neighbors(v) {
			w := e.To
			if done[w] {
				continue
			}
			nd := it.dist + e.Weight
			better := nd < dist[w]
			//determinlint:allow floateq deliberate exact tie-break: equal-distance frontiers go to the smaller center id
			if nd == dist[w] && owner[w] >= 0 {
				// Tie: prefer the smaller center id.
				better = centers[owner[v]] < centers[owner[w]]
			}
			if better {
				dist[w] = nd
				owner[w] = owner[v]
				parent[w] = v
				h.push(pqItem{node: w, dist: nd, owner: centers[owner[v]]})
			}
		}
	}
	return owner, dist, parent
}
