package metric

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"compactrouting/internal/graph"
)

// propertyGraph is the shared fixture for the LazyOracle property
// tests: a power-law graph (skewed degrees stress the truncated rows)
// with enough nodes that the undersized caches below actually evict.
func propertyGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.PowerLaw(n, 2, 16, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLazyTriangleInequality checks the metric axioms on the lazy
// backend's answers: symmetry, identity, and the triangle inequality
// over all node triples. Both hold only up to float accumulation
// slack — Dijkstra from opposite endpoints of a path sums the same
// edge weights in opposite order, which can differ in the last ulp
// (the dense backend has the identical property).
func TestLazyTriangleInequality(t *testing.T) {
	g := propertyGraph(t, 48, 7)
	o := NewLazyOracleOpts(g, LazyOpts{MaxEntries: 3 * g.N()})
	n := g.N()
	const slack = 1e-9
	for u := 0; u < n; u++ {
		if d := o.Dist(u, u); d != 0 {
			t.Fatalf("Dist(%d,%d) = %v, want 0", u, u, d)
		}
		for v := 0; v < n; v++ {
			duv := o.Dist(u, v)
			if dvu := o.Dist(v, u); math.Abs(duv-dvu) > slack*(1+duv) {
				t.Fatalf("asymmetric: Dist(%d,%d)=%v Dist(%d,%d)=%v", u, v, duv, v, u, dvu)
			}
			for w := 0; w < n; w += 5 {
				if duw := o.Dist(u, w); duw > duv+o.Dist(v, w)+slack {
					t.Fatalf("triangle violated: d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v",
						u, w, duw, u, v, v, w, duv+o.Dist(v, w))
				}
			}
		}
	}
}

// TestLazyBallMonotonicity checks that balls grow consistently: a
// smaller radius yields a prefix of the larger radius's ball (rows
// order members by (distance, id)), BallSize matches len(Ball), and
// RadiusOfSize is the inverse of BallOfSize — the ball at the returned
// radius holds at least the requested count.
func TestLazyBallMonotonicity(t *testing.T) {
	g := propertyGraph(t, 64, 11)
	o := NewLazyOracleOpts(g, LazyOpts{MaxEntries: 4 * g.N()})
	n := g.N()
	for u := 0; u < n; u += 3 {
		ecc := o.Eccentricity(u)
		var prev []int
		for _, frac := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0} {
			r := ecc * frac
			ball := o.Ball(u, r)
			if got := o.BallSize(u, r); got != len(ball) {
				t.Fatalf("BallSize(%d,%g)=%d but len(Ball)=%d", u, r, got, len(ball))
			}
			if len(ball) < len(prev) {
				t.Fatalf("ball shrank at u=%d r=%g: %d -> %d members", u, r, len(prev), len(ball))
			}
			for i, v := range prev {
				if ball[i] != v {
					t.Fatalf("smaller ball not a prefix at u=%d r=%g index %d", u, r, i)
				}
			}
			for _, v := range ball {
				if d := o.Dist(u, v); d > r {
					t.Fatalf("Ball(%d,%g) holds %d at distance %v", u, r, v, d)
				}
			}
			prev = ball
		}
		for _, size := range []int{1, 2, n / 4, n / 2, n} {
			r := o.RadiusOfSize(u, size)
			if got := o.BallSize(u, r); got < size {
				t.Fatalf("BallSize(%d, RadiusOfSize(%d,%d)=%g) = %d < %d", u, u, size, r, got, size)
			}
			if len(o.BallOfSize(u, size)) < size {
				t.Fatalf("BallOfSize(%d,%d) returned fewer than %d members", u, size, size)
			}
		}
	}
}

// TestLazyEvictionRequeryDeterminism pins that evicting a row and
// re-deriving it later returns bit-identical answers: a tiny cache
// (floored at one full row) is swept twice in different query orders
// and cross-checked against an unbounded oracle. Cache history must be
// unobservable through the query API.
func TestLazyEvictionRequeryDeterminism(t *testing.T) {
	g := propertyGraph(t, 56, 13)
	n := g.N()
	// MaxEntries 1 floors at n: each full row evicts the previous one,
	// so every query below re-derives its row from scratch.
	tiny := NewLazyOracleOpts(g, LazyOpts{MaxEntries: 1})
	big := NewLazyOracleOpts(g, LazyOpts{MaxEntries: n * n})
	type answer struct {
		dist float64
		hop  int
		ball []int
	}
	query := func(o *LazyOracle, u, v int) answer {
		return answer{
			dist: o.Dist(u, v),
			hop:  o.NextHop(u, v),
			ball: o.BallOfSize(u, 1+(u+v)%n),
		}
	}
	var keys [][2]int
	first := make(map[[2]int]answer)
	for u := 0; u < n; u += 2 {
		for v := 0; v < n; v += 3 {
			k := [2]int{u, v}
			keys = append(keys, k)
			first[k] = query(tiny, u, v)
		}
	}
	// Second sweep in reverse order: every row was evicted in between,
	// and the requery must reproduce the first sweep bit for bit.
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		got := query(tiny, k[0], k[1])
		if !eqBits(got.dist, first[k].dist) || got.hop != first[k].hop || !intsEqual(got.ball, first[k].ball) {
			t.Fatalf("requery (%d,%d) after eviction diverged: %+v vs %+v", k[0], k[1], got, first[k])
		}
		ref := query(big, k[0], k[1])
		if !eqBits(got.dist, ref.dist) || got.hop != ref.hop || !intsEqual(got.ball, ref.ball) {
			t.Fatalf("(%d,%d): evicting oracle diverged from unbounded: %+v vs %+v", k[0], k[1], got, ref)
		}
	}
}

// TestLazyPrefetchParallelDeterminism pins PrefetchBalls' schedule
// independence: the rows it installs — and every answer derived from
// them — must be identical whether the strided Dijkstra workers run on
// one P or eight. Install order is serialized in source order by
// construction; this test is the regression net for that contract.
func TestLazyPrefetchParallelDeterminism(t *testing.T) {
	g := propertyGraph(t, 96, 17)
	n := g.N()
	sources := make([]int, 0, n/2)
	for u := 0; u < n; u += 2 {
		sources = append(sources, u)
	}
	sweep := func(procs int) (map[int][]int, int) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		o := NewLazyOracleOpts(g, LazyOpts{MaxEntries: 64 * n})
		r := o.Eccentricity(sources[0]) / 2
		o.PrefetchBalls(sources, r)
		balls := make(map[int][]int, len(sources))
		for _, u := range sources {
			balls[u] = o.Ball(u, r)
		}
		return balls, o.CachedEntries()
	}
	serialBalls, serialEntries := sweep(1)
	parallelBalls, parallelEntries := sweep(8)
	if !reflect.DeepEqual(serialBalls, parallelBalls) {
		t.Fatal("PrefetchBalls results differ between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
	if serialEntries != parallelEntries {
		t.Fatalf("cache state differs by schedule: %d entries serial, %d parallel", serialEntries, parallelEntries)
	}
}
