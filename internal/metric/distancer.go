package metric

// Distancer is the metric backend the scheme constructors compile
// against: every query the paper's constructions make about the
// shortest-path metric, abstracted away from how the answers are
// produced. Two implementations exist:
//
//   - APSP, the dense backend: Dijkstra from every node up front,
//     O(n²) memory, O(1) queries.
//   - LazyOracle, the on-demand backend: truncated single-source
//     Dijkstra rows computed per query and cached in a bounded LRU,
//     o(n²) memory for ball-local construction patterns.
//
// The two backends are byte-equivalent: for every query below, both
// return bit-identical results on the same graph (asserted by the
// dense/lazy equivalence suite in equivalence_test.go). The contract
// that makes this possible is the orientation pinned on APSP: Dist(u,
// v) carries source-u summation order, NextHop(u, v) is the canonical
// target-rooted tree of v, and ball/order queries around u are pure
// functions of u's own Dijkstra row with (distance, id) tie-breaks.
//
// Distancers are preprocessing oracles: schemes consult them while
// compiling routing tables, never while routing. All methods are safe
// for concurrent use (APSP is immutable; LazyOracle locks internally).
type Distancer interface {
	// N returns the number of nodes.
	N() int
	// Dist returns d(u, v) with source-u summation order. The serving
	// plane's framed route path calls it per query: the dense backend
	// answers with an allocation-free array read (held to 0 allocs/op
	// by the frame-path AllocsPerRun pins), while the lazy backend may
	// allocate on a cold row — its serving cost is amortized, not
	// zero, which is the documented price of skipping the n² build.
	//determinlint:hotpath
	Dist(u, v int) float64
	// NextHop returns the neighbor of u on the canonical shortest path
	// from u to v (u's parent in the tree rooted at v), or -1 if u == v.
	NextHop(u, v int) int
	// Kth returns the k-th nearest node to u (k=0 is u itself), ties in
	// distance broken by node id.
	Kth(u, k int) int
	// RadiusOfSize returns r_u(size): the distance from u to its
	// size-th nearest node. RadiusOfSize(u, 1) == 0.
	RadiusOfSize(u, size int) float64
	// BallOfSize returns the first size entries of u's distance order.
	BallOfSize(u, size int) []int
	// AppendBallOfSize is BallOfSize appending into dst.
	AppendBallOfSize(dst []int, u, size int) []int
	// Ball returns all nodes within distance r of u (inclusive), in
	// increasing (distance, id) order.
	Ball(u int, r float64) []int
	// AppendBall is Ball appending into dst.
	AppendBall(dst []int, u int, r float64) []int
	// BallSize returns |B_u(r)|.
	BallSize(u int, r float64) int
	// Nearest returns the member of set nearest to u — comparing the
	// candidate-rooted distances Dist(v, u), ties by least id — with
	// its distance, or (-1, +Inf) for an empty set.
	Nearest(u int, set []int) (int, float64)
	// Eccentricity returns max_v d(u, v).
	Eccentricity(u int) float64
	// MinPairDistance returns the smallest nonzero pairwise distance.
	// On a connected positively-weighted graph this is exactly the
	// minimum edge weight (any multi-edge path sums at least two such
	// weights), so both backends produce the identical float64.
	MinPairDistance() float64
}

var (
	_ Distancer = (*APSP)(nil)
	_ Distancer = (*LazyOracle)(nil)
)

// DiameterOf returns the exact diameter, max_u Eccentricity(u), of any
// backend. On the dense backend each eccentricity is an O(1) read; on
// the lazy backend every one costs a full Dijkstra row, so scalable
// paths should bound scales with Eccentricity of a root instead.
func DiameterOf(a Distancer) float64 {
	if d, ok := a.(interface{ Diameter() float64 }); ok {
		return d.Diameter()
	}
	max := 0.0
	for u := 0; u < a.N(); u++ {
		if e := a.Eccentricity(u); e > max {
			max = e
		}
	}
	return max
}

// NormalizedDiameterOf returns Delta = diameter / min pair distance,
// the paper's normalized diameter (1 for n < 2). Same cost caveat as
// DiameterOf on the lazy backend.
func NormalizedDiameterOf(a Distancer) float64 {
	if a.N() < 2 {
		return 1
	}
	return DiameterOf(a) / a.MinPairDistance()
}

// Prefetcher is optionally implemented by backends that can batch-build
// internal per-source state ahead of a sweep. PrefetchBalls warms the
// rows of the given sources out to radius r, sharding the cold misses
// over internal/par; queries stay answer-identical whether or not it
// ran (it is purely a throughput hint).
type Prefetcher interface {
	PrefetchBalls(sources []int, r float64)
}

// PrefetchBalls warms a's per-source state for the sources out to
// radius r when the backend supports it (the dense backend needs no
// warming and this is a no-op).
func PrefetchBalls(a Distancer, sources []int, r float64) {
	if p, ok := a.(Prefetcher); ok {
		p.PrefetchBalls(sources, r)
	}
}
