package metric

import (
	"math"
	"math/rand"
)

// GreedyCoverCount returns the number of balls of radius r/2 a greedy
// cover uses for B_u(r): repeatedly pick the uncovered node nearest u
// and cover everything within r/2 of it. The chosen centers are pairwise
// more than r/2 apart, so the count is sandwiched between the true
// covering number and the r/2-packing number of B_u(r); by Lemma 2.2
// both are at most exponential in the doubling dimension.
func GreedyCoverCount(a Distancer, u int, r float64) int {
	ball := a.Ball(u, r)
	covered := make(map[int]bool, len(ball))
	count := 0
	for _, x := range ball {
		if covered[x] {
			continue
		}
		count++
		for _, y := range ball {
			if !covered[y] && a.Dist(x, y) <= r/2 {
				covered[y] = true
			}
		}
	}
	return count
}

// EstimateDoublingDimension returns an empirical estimate of the metric's
// doubling dimension: the maximum over sampled (center, radius) pairs of
// log2(greedy half-radius cover count). The estimate alpha' satisfies
// alpha <= alpha' <= 2*alpha for the true dimension alpha (the greedy
// centers form an r/2-packing, which Lemma 2.2 bounds by 4^alpha).
//
// samples limits the number of (center, radius) probes; pass 0 for a
// deterministic full sweep over all centers at O(log Delta) radii (only
// viable for small n).
func EstimateDoublingDimension(a Distancer, samples int, seed int64) float64 {
	if a.N() < 2 {
		return 0
	}
	maxCount := 1
	probe := func(u int, r float64) {
		if c := GreedyCoverCount(a, u, r); c > maxCount {
			maxCount = c
		}
	}
	minD := a.MinPairDistance()
	maxD := DiameterOf(a)
	levels := int(math.Ceil(math.Log2(maxD/minD))) + 1
	if samples <= 0 {
		for u := 0; u < a.N(); u++ {
			r := minD
			for l := 0; l <= levels; l++ {
				probe(u, r)
				r *= 2
			}
		}
	} else {
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < samples; s++ {
			u := rng.Intn(a.N())
			l := rng.Intn(levels + 1)
			probe(u, minD*math.Pow(2, float64(l)))
		}
	}
	return math.Log2(float64(maxCount))
}
