// Package tz implements the Thorup–Zwick stretch-3 compact routing
// scheme for general graphs (reference [29] of the paper, "Compact
// routing schemes", SPAA 2001, k = 2), as a comparator: on general
// graphs stretch below 3 requires Omega(sqrt(n)) tables, and TZ meets
// stretch exactly 3 with ~O(sqrt(n log n)) tables — against which the
// paper's doubling-metric schemes achieve (1+eps) with polylog tables.
//
// Construction: a random landmark sample A; every node u stores a next
// hop toward every landmark and toward every member of its cluster
// C(u) = { v : d(u, v) < d(v, A) }, plus its local tree-routing tables
// for each landmark's shortest-path tree. The label of v names its
// home landmark a(v) (the nearest in A) and v's tree-routing label in
// a(v)'s tree. Routing tries the cluster (optimal paths) and otherwise
// relays via the destination's home landmark: cost <= d(u,v) + 2
// d(v,A) <= 3 d(u,v) whenever the cluster misses.
//
// This package is bound by the repo's deterministic ruleset: its
// outputs must be a pure function of explicit seeds (determinlint
// enforces the source-level contract; see DESIGN.md §Static analysis).
//
//determinlint:deterministic
package tz

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"compactrouting/internal/bits"
	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
	"compactrouting/internal/treeroute"
)

// Scheme is a compiled stretch-3 TZ routing scheme.
type Scheme struct {
	g *graph.Graph
	a metric.Distancer
	// landmarks, ascending id; landmarkIdx inverts it.
	landmarks   []int
	landmarkIdx map[int]int
	// home[v] = index into landmarks of v's nearest landmark.
	home []int32
	// distA[v] = d(v, A).
	distA []float64
	// trees[l] = tree routing on the SPT of landmarks[l].
	trees []*treeroute.Scheme
	// cluster[u] maps cluster member -> next hop from u.
	cluster []map[int32]int32
	// toLandmark[u][l] = next hop from u toward landmarks[l].
	toLandmark [][]int32
	tblBits    []int
	idBits     int
}

var _ core.LabeledScheme = (*Scheme)(nil)

// New compiles the scheme. sampleFactor scales the landmark count
// |A| = ceil(sampleFactor * sqrt(n * ln n)) (1 is the classic choice;
// it balances the landmark table against the expected cluster size).
func New(g *graph.Graph, a metric.Distancer, sampleFactor float64, seed int64) (*Scheme, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("tz: need at least 2 nodes")
	}
	if sampleFactor <= 0 {
		return nil, fmt.Errorf("tz: sampleFactor %v must be positive", sampleFactor)
	}
	count := int(math.Ceil(sampleFactor * math.Sqrt(float64(n)*math.Log(float64(n)))))
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	landmarks := append([]int(nil), perm[:count]...)
	sort.Ints(landmarks)
	s := &Scheme{
		g: g, a: a,
		landmarks:   landmarks,
		landmarkIdx: make(map[int]int, count),
		home:        make([]int32, n),
		distA:       make([]float64, n),
		trees:       make([]*treeroute.Scheme, count),
		cluster:     make([]map[int32]int32, n),
		toLandmark:  make([][]int32, n),
		tblBits:     make([]int, n),
		idBits:      bits.UintBits(n),
	}
	for i, l := range landmarks {
		s.landmarkIdx[l] = i
	}
	// Home landmarks and d(v, A); ties by landmark id (ascending scan).
	for v := 0; v < n; v++ {
		best, bd := -1, math.Inf(1)
		for i, l := range landmarks {
			if d := a.Dist(v, l); d < bd {
				best, bd = i, d
			}
		}
		s.home[v] = int32(best)
		s.distA[v] = bd
	}
	// Landmark shortest-path trees with tree routing.
	for i, l := range landmarks {
		spt := metric.Dijkstra(g, l)
		parent := make([]int, n)
		copy(parent, spt.Parent)
		parent[l] = -1
		tr, err := treeroute.New(parent, l)
		if err != nil {
			return nil, fmt.Errorf("tz: landmark tree %d: %w", l, err)
		}
		s.trees[i] = tr
	}
	// Clusters C(u) = { v : d(u,v) < d(v,A) } with next hops, and the
	// per-landmark next hops.
	for u := 0; u < n; u++ {
		s.cluster[u] = make(map[int32]int32)
		for v := 0; v < n; v++ {
			if u != v && a.Dist(u, v) < s.distA[v] {
				s.cluster[u][int32(v)] = int32(a.NextHop(u, v))
			}
		}
		s.toLandmark[u] = make([]int32, count)
		for i, l := range landmarks {
			if u == l {
				s.toLandmark[u][i] = int32(u)
			} else {
				s.toLandmark[u][i] = int32(a.NextHop(u, l))
			}
		}
	}
	// Storage: landmark next hops, cluster entries, per-landmark tree
	// tables, home landmark, d(v,A) quantized to an id-width field.
	for u := 0; u < n; u++ {
		b := s.idBits + 2*s.idBits // home + own tree label-ish state
		b += count * s.idBits      // next hop per landmark
		b += len(s.cluster[u]) * 2 * s.idBits
		for i := range s.trees {
			b += s.trees[i].TableBits(u)
		}
		s.tblBits[u] = b
	}
	return s, nil
}

// Landmarks returns the landmark count (for reports).
func (s *Scheme) Landmarks() int { return len(s.landmarks) }

// MaxClusterSize returns the largest cluster (the quantity the TZ
// sampling argument bounds by ~4n/|A| whp).
func (s *Scheme) MaxClusterSize() int {
	max := 0
	for _, c := range s.cluster {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}

// SchemeName implements core.LabeledScheme.
func (s *Scheme) SchemeName() string { return "tz/stretch-3" }

// LabelOf returns v's label: we use v's id; the full routing label
// (home landmark + tree label) is derived by the source from it at no
// extra table cost because the header carries it (LabelBitsOf reports
// the true label size).
func (s *Scheme) LabelOf(v int) int { return v }

// LabelBitsOf returns the size of v's full TZ label: v's id, its home
// landmark, and its tree-routing label in the home landmark's tree.
func (s *Scheme) LabelBitsOf(v int) int {
	home := int(s.home[v])
	return 2*s.idBits + s.trees[home].Label(v).Bits()
}

// TableBits returns u's table size in bits.
func (s *Scheme) TableBits(v int) int { return s.tblBits[v] }

// RouteToLabel routes from src to dst (= label): cluster next hops
// while the destination is in the current node's cluster, otherwise
// toward the destination's home landmark and down its tree.
func (s *Scheme) RouteToLabel(src, label int) (*core.Route, error) {
	n := s.g.N()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("tz: source %d out of range", src)
	}
	if label < 0 || label >= n {
		return nil, fmt.Errorf("tz: destination %d out of range", label)
	}
	dst := label
	tr := core.NewTrace(s.g, src)
	hdr := s.LabelBitsOf(dst) + 2
	tr.Header(hdr)
	homeIdx := int(s.home[dst])
	homeTree := s.trees[homeIdx]
	inTreePhase := false
	maxSteps := 4 * n
	for step := 0; ; step++ {
		if step > maxSteps {
			return nil, fmt.Errorf("tz: no progress routing to %d", dst)
		}
		u := tr.At()
		if u == dst {
			return tr.Finish(dst)
		}
		if !inTreePhase {
			if next, ok := s.cluster[u][int32(dst)]; ok {
				// Cluster phase: v ∈ C(u) persists along the shortest
				// path (d(w,v) <= d(u,v) < d(v,A)), so this never
				// dead-ends.
				if err := tr.Hop(int(next)); err != nil {
					return nil, err
				}
				continue
			}
			if u != s.landmarks[homeIdx] {
				// Head for the destination's home landmark.
				if err := tr.Hop(int(s.toLandmark[u][homeIdx])); err != nil {
					return nil, err
				}
				continue
			}
			inTreePhase = true
		}
		// Tree phase: descend the home landmark's SPT.
		next, arrived, err := homeTree.NextHop(u, homeTree.Label(dst))
		if err != nil {
			return nil, err
		}
		if arrived {
			return tr.Finish(dst)
		}
		if err := tr.Hop(next); err != nil {
			return nil, err
		}
	}
}
