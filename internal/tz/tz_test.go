package tz

import (
	"math"
	"testing"

	"compactrouting/internal/core"
	"compactrouting/internal/graph"
	"compactrouting/internal/metric"
)

func fixtures(t *testing.T, n int, seed int64) (*graph.Graph, *metric.APSP) {
	t.Helper()
	g, _, err := graph.RandomGeometric(n, 0.2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, metric.NewAPSP(g)
}

func TestStretchAtMostThree(t *testing.T) {
	g, a := fixtures(t, 150, 1)
	s, err := New(g, a, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.EvaluateLabeled(s, a, core.AllPairs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max > 3+1e-9 {
		t.Fatalf("TZ stretch %.4f exceeds 3", stats.Max)
	}
	t.Logf("TZ: max %.3f mean %.3f, landmarks %d, max cluster %d",
		stats.Max, stats.Mean, s.Landmarks(), s.MaxClusterSize())
}

func TestStretchAtMostThreeOnRing(t *testing.T) {
	// Rings are the classic bad case for tree routing; TZ must still
	// hold 3.
	g, err := graph.Ring(64)
	if err != nil {
		t.Fatal(err)
	}
	a := metric.NewAPSP(g)
	s, err := New(g, a, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.EvaluateLabeled(s, a, core.AllPairs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max > 3+1e-9 {
		t.Fatalf("TZ stretch %.4f exceeds 3 on the ring", stats.Max)
	}
}

func TestClusterRoutesAreOptimal(t *testing.T) {
	g, a := fixtures(t, 100, 2)
	s, err := New(g, a, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for u := 0; u < g.N() && checked < 200; u++ {
		for v := range s.cluster[u] {
			r, err := s.RouteToLabel(u, int(v))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(r.Cost-a.Dist(u, int(v))) > 1e-9 {
				t.Fatalf("cluster route %d->%d cost %v, optimal %v", u, v, r.Cost, a.Dist(u, int(v)))
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no cluster pairs found")
	}
}

func TestClusterDefinition(t *testing.T) {
	g, a := fixtures(t, 90, 3)
	s, err := New(g, a, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			_, in := s.cluster[u][int32(v)]
			want := u != v && a.Dist(u, v) < s.distA[v]
			if in != want {
				t.Fatalf("cluster[%d] membership of %d = %v, want %v", u, v, in, want)
			}
		}
	}
}

func TestTableSizesSublinear(t *testing.T) {
	// TZ tables are ~O(sqrt(n log n) log n) bits: much smaller than
	// full tables, much larger than polylog. Check it sits strictly
	// between on a moderate graph.
	g, a := fixtures(t, 250, 4)
	s, err := New(g, a, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	tb := core.Tables(s.TableBits, g.N())
	full := (g.N() - 1) * 8
	if tb.MaxBits >= 4*full {
		t.Fatalf("TZ tables %d not sublinear vs full %d", tb.MaxBits, full)
	}
	if tb.MaxBits <= 0 {
		t.Fatal("no storage accounted")
	}
}

func TestValidation(t *testing.T) {
	g, a := fixtures(t, 40, 5)
	if _, err := New(g, a, 0, 1); err == nil {
		t.Fatal("zero sample factor accepted")
	}
	s, err := New(g, a, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RouteToLabel(-1, 0); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := s.RouteToLabel(0, g.N()); err == nil {
		t.Fatal("bad destination accepted")
	}
	if _, err := s.RouteToLabel(3, 3); err != nil {
		t.Fatal("self route failed")
	}
}

func TestLandmarkDestinations(t *testing.T) {
	g, a := fixtures(t, 80, 6)
	s, err := New(g, a, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range s.landmarks {
		r, err := s.RouteToLabel(0, l)
		if err != nil {
			t.Fatal(err)
		}
		if r.Dst != l {
			t.Fatalf("route to landmark %d ended at %d", l, r.Dst)
		}
		if r.Stretch(a.Dist(0, l)) > 3+1e-9 {
			t.Fatalf("landmark route stretch %v", r.Stretch(a.Dist(0, l)))
		}
	}
}
