// Sensorgrid: near-optimal labeled routing on a perforated field of
// sensors.
//
// A dense sensor deployment with dead zones (obstacles, failed nodes)
// induces a metric of low doubling dimension that is NOT growth-
// bounded — around a hole, doubling a radius can multiply reachable
// nodes arbitrarily. The Theorem 1.2 labeled scheme still guarantees
// (1+eps)-stretch with polylog state; this example measures it against
// both baselines and shows the routed detour around a hole.
package main

import (
	"fmt"
	"log"

	compactrouting "compactrouting"
)

func main() {
	nw, err := compactrouting.GridWithHolesNetwork(20, 20, 0.3, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor field: %d live sensors, diameter %.0f, doubling ~%.1f\n",
		nw.N(), nw.Diameter(), nw.DoublingDimension(200, 3))

	scheme, err := nw.NewScaleFreeLabeled(0.25)
	if err != nil {
		log.Fatal(err)
	}
	full, _ := nw.NewFullTable()
	tree, err := nw.NewSingleTree(0)
	if err != nil {
		log.Fatal(err)
	}

	pairs := compactrouting.SamplePairs(nw.N(), 600, 11)
	fmt.Println("\nscheme                 max stretch  mean stretch  max table bits")
	for _, s := range []*compactrouting.Labeled{scheme, full, tree} {
		stats, err := s.Evaluate(pairs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.3f  %12.3f  %14d\n",
			s.Name(), stats.Max, stats.Mean, s.Tables().MaxBits)
	}

	// Show one route in detail: the scheme detours around holes while
	// staying within (1+eps) of the true shortest path.
	src, dst := 0, nw.N()-1
	r, err := scheme.Route(src, scheme.Label(dst))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroute %d -> %d: %d hops, cost %.0f, shortest %.0f, stretch %.3f\n",
		src, dst, len(r.Path)-1, r.Cost, nw.Dist(src, dst), r.Stretch(nw.Dist(src, dst)))
	fmt.Printf("labels are just %d-bit integers: label(%d) = %d\n", 9, dst, scheme.Label(dst))
}
