// Adversary: explore the search game behind the stretch-9 lower bound
// (Theorem 1.3).
//
// A target name hides at the end of one of many weighted branches off a
// common root. Routing tables are too small to say where (the paper's
// congruent-namings argument), so any scheme must physically probe
// branches, and probing weight b costs a 2b round trip while revealing
// the target's location only among branches of weight <= b. This
// program prints the exact optimal strategy for the paper's weight grid
// and shows why its worst-case stretch converges to 9.
package main

import (
	"fmt"

	"compactrouting/internal/lowerbound"
)

func main() {
	p := lowerbound.Params{P: 10, Q: 4}
	weights := p.Weights()
	fmt.Printf("the game: %d branches with weights w_{i,j} = 2^i(q+j), p=%d, q=%d\n",
		len(weights), p.P, p.Q)
	fmt.Printf("first weights: %.0f %.0f %.0f %.0f ... last: %.0f\n\n",
		weights[0], weights[1], weights[2], weights[3], weights[len(weights)-1])

	opt, probes, err := lowerbound.OptimalStretch(weights)
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal strategy probes %d of %d branches:\n  ", len(probes), len(weights))
	for _, idx := range probes {
		fmt.Printf("%.0f ", weights[idx])
	}
	fmt.Printf("\n(≈ doubling: each probe roughly twice the last — the base-2 geometric escalation)\n")
	fmt.Printf("worst-case stretch of the optimal strategy: %.4f\n", opt)
	fmt.Printf("the discrete-grid limit 1+8q/(q+1) at q=%d: %.4f\n\n", p.Q, 1+8*float64(p.Q)/float64(p.Q+1))

	fmt.Println("why 9: sup stretch of a pure base-b geometric strategy is 1 + 2b²/(b−1):")
	for _, b := range []float64{1.5, 1.8, 2.0, 2.2, 3.0} {
		marker := ""
		if b == 2.0 {
			marker = "   <- minimum: the 9 of Theorems 1.1 and 1.3"
		}
		fmt.Printf("  b=%.1f: %.4f%s\n", b, lowerbound.GeometricRatio(b), marker)
	}

	fmt.Println("\nthe paper's parameterization drives the limit to 9 - eps:")
	for _, eps := range []float64{4.0, 2.0, 1.0, 0.5} {
		pp, err := lowerbound.PaperParams(eps)
		if err != nil {
			panic(err)
		}
		limit := 1 + 8*float64(pp.Q)/float64(pp.Q+1)
		fmt.Printf("  eps=%.1f: p=%d q=%d  ->  limit %.4f (>= 9-eps = %.4f)\n",
			eps, pp.P, pp.Q, limit, 9-eps)
	}

	fmt.Println("\nand the matching counterexample graph exists: G(p=4, q=2, n=512)")
	tr, err := lowerbound.Build(lowerbound.Params{P: 4, Q: 2}, 512)
	if err != nil {
		panic(err)
	}
	fmt.Printf("built: %d nodes, %d branches, root edges %v...\n",
		tr.G.N(), len(tr.Sizes), tr.Params.BranchWeight(0, 0))
}
