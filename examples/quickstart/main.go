// Quickstart: build a network, compile the paper's headline scheme
// (Theorem 1.1: scale-free name-independent routing with stretch
// 9+eps), and deliver a packet by destination name.
package main

import (
	"fmt"
	"log"

	compactrouting "compactrouting"
)

func main() {
	// A 16x16 grid with 25% of the cells knocked out: a low-doubling-
	// dimension network that is not growth-bounded — the paper's
	// motivating topology.
	nw, err := compactrouting.GridWithHolesNetwork(16, 16, 0.25, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d, m=%d, diameter=%.0f, doubling dimension ~%.1f\n",
		nw.N(), nw.M(), nw.Diameter(), nw.DoublingDimension(200, 1))

	// Compile the scheme. Nodes keep only polylog-size tables; nil
	// means nodes get random original names (the name-independent
	// model's adversarial setting).
	scheme, err := nw.NewScaleFreeNameIndependent(0.25, nil)
	if err != nil {
		log.Fatal(err)
	}
	tables := scheme.Tables()
	fmt.Printf("compiled %s: max table %d bits/node (vs %d bits for full tables)\n",
		scheme.Name(), tables.MaxBits, (nw.N()-1)*8)

	// Route a packet from node 0 to the node named 7 — the source
	// knows nothing about where name 7 lives.
	route, err := scheme.Route(0, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered 0 -> name 7 (node %d): cost %.0f over %d hops, stretch %.2f, max header %d bits\n",
		route.Dst, route.Cost, len(route.Path)-1,
		route.Stretch(nw.Dist(route.Src, route.Dst)), route.MaxHeaderBits)

	// Evaluate stretch over a sample of pairs.
	stats, err := scheme.Evaluate(compactrouting.SamplePairs(nw.N(), 500, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("over %d random pairs: max stretch %.2f, mean %.2f (theorem bound: 9+O(eps))\n",
		stats.Count, stats.Max, stats.Mean)
}
