// Scalefree: why "scale-free" matters.
//
// A network whose link weights span an exponential range (e.g. a
// backbone mixing meter-scale and planet-scale links) has a normalized
// diameter Delta exponential in n. Schemes whose tables grow with
// log(Delta) — most pre-2006 constructions, and this repository's
// "simple" variants — blow up on such networks, while the paper's
// scale-free schemes (Theorems 1.1 and 1.2) are oblivious to Delta.
// This example measures both on the same exponential-weight networks.
package main

import (
	"fmt"
	"log"
	"math"

	compactrouting "compactrouting"
)

func main() {
	fmt.Println("tables on exponential-diameter paths (weights 1, 8, 64, ...):")
	fmt.Println("\n   n   log2(Delta)   simple labeled   scale-free labeled   ratio")
	for _, n := range []int{24, 32, 48, 64} {
		nw, err := compactrouting.ExponentialPathNetwork(n, 8)
		if err != nil {
			log.Fatal(err)
		}
		simple, err := nw.NewSimpleLabeled(0.25)
		if err != nil {
			log.Fatal(err)
		}
		free, err := nw.NewScaleFreeLabeled(0.25)
		if err != nil {
			log.Fatal(err)
		}
		sb, fb := simple.Tables().MaxBits, free.Tables().MaxBits
		fmt.Printf("%4d   %11.0f   %14d   %18d   %5.1fx\n",
			n, math.Log2(nw.NormalizedDiameter()), sb, fb, float64(sb)/float64(fb))
	}

	// Both still route with (1+eps) stretch.
	nw, err := compactrouting.ExponentialStarNetwork(60, 3, 6)
	if err != nil {
		log.Fatal(err)
	}
	free, err := nw.NewScaleFreeLabeled(0.25)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := free.Evaluate(nil) // all pairs
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscale-free labeled on an exponential star (n=%d, Delta=%.3g):\n", nw.N(), nw.NormalizedDiameter())
	fmt.Printf("  all-pairs stretch: max %.3f, mean %.3f — unchanged by the weight scale\n", stats.Max, stats.Mean)

	// The name-independent pair behaves the same way.
	sfn, err := nw.NewScaleFreeNameIndependent(0.25, nil)
	if err != nil {
		log.Fatal(err)
	}
	nstats, err := sfn.Evaluate(compactrouting.SamplePairs(nw.N(), 500, 3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  name-independent: max stretch %.3f, mean %.3f, max table %d bits\n",
		nstats.Max, nstats.Mean, sfn.Tables().MaxBits)
}
