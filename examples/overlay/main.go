// Overlay: a distributed-hash-table-style scenario — the application
// the paper's introduction motivates name-independent routing with.
//
// Peers in a peer-to-peer overlay get random identifiers when they
// join (as in Chord or LAND); identifiers carry no topology. Object
// lookups must reach the peer whose identifier owns a key, so the
// overlay needs routing *to a name*, not to a topological label. This
// example runs such lookups over the Theorem 1.1 scheme and compares
// the locality of the resulting paths with a naive approach that
// routes every lookup through a central directory node.
package main

import (
	"fmt"
	"log"
	"math/rand"

	compactrouting "compactrouting"
)

func main() {
	const peers = 300
	nw, err := compactrouting.RandomGeometricNetwork(peers, 0.14, 9)
	if err != nil {
		log.Fatal(err)
	}
	n := nw.N()
	fmt.Printf("overlay: %d peers, diameter %.0f\n", n, nw.Diameter())

	// Peers draw random 32-bit identifiers, as a DHT would — exactly
	// the name-independent model with a sparse identifier space.
	rng := rand.New(rand.NewSource(5))
	ids, err := compactrouting.SparseNames(n, 1<<32, 5)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := nw.NewScaleFreeNameIndependent(0.25, ids)
	if err != nil {
		log.Fatal(err)
	}

	// A central-directory strawman: every lookup first travels to peer
	// 0 (which knows everyone), then to the owner. Its weakness is not
	// average cost — it is that NEARBY lookups pay a network-crossing
	// detour, and that every lookup hammers the directory peer.
	const lookups = 400
	var schemeNear, dirNear, nearCount float64
	var schemeCost, directoryCost, optimal float64
	median := nw.Diameter() / 4
	for i := 0; i < lookups; i++ {
		src := rng.Intn(n)
		key := ids[rng.Intn(n)] // the object key = owning peer's identifier
		r, err := scheme.Route(src, key)
		if err != nil {
			log.Fatal(err)
		}
		owner := r.Dst
		d := nw.Dist(src, owner)
		dirCost := nw.Dist(src, 0) + nw.Dist(0, owner)
		schemeCost += r.Cost
		directoryCost += dirCost
		optimal += d
		if d > 0 && d <= median {
			schemeNear += r.Cost / d
			dirNear += dirCost / d
			nearCount++
		}
	}
	fmt.Printf("%d lookups (scheme %.2fx optimal overall, directory %.2fx):\n",
		lookups, schemeCost/optimal, directoryCost/optimal)
	fmt.Printf("  nearby lookups (d <= diameter/4, %d of them):\n", int(nearCount))
	fmt.Printf("    compact name-independent routing: avg stretch %.2f (stays local)\n", schemeNear/nearCount)
	fmt.Printf("    central directory at peer 0:      avg stretch %.2f (crosses the network)\n", dirNear/nearCount)
	fmt.Printf("  load: the directory funnels all %d lookups through one peer with %d bits of\n",
		lookups, (n-1)*2*9)
	fmt.Printf("  state; the compact scheme spreads lookups and keeps polylog state everywhere.\n")

	tb := scheme.Tables()
	fmt.Printf("per-peer state: max %d bits, mean %.0f bits — polylog in n, so at n=%d full\n",
		tb.MaxBits, tb.MeanBits, n)
	fmt.Printf("membership (%d bits) is still cheaper; the polylog curve wins as the overlay\n", (n-1)*9)
	fmt.Printf("grows (run routebench -exp storage for the crossover).\n")
}
