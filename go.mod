module compactrouting

go 1.22
