package compactrouting

// One benchmark per paper artifact (Tables 1-2, Figures 1-3, plus the
// E6/E7 sweeps DESIGN.md adds), each regenerating the experiment's rows
// into io.Discard, and micro-benchmarks for the substrates. Run
//
//	go test -bench=. -benchmem
//
// cmd/routebench prints the same rows to stdout at larger sizes.

import (
	"io"
	"sync"
	"testing"

	ballpackpkg "compactrouting/internal/ballpack"
	"compactrouting/internal/exp"
	graphpkg "compactrouting/internal/graph"
	lowerboundpkg "compactrouting/internal/lowerbound"
	metricpkg "compactrouting/internal/metric"
	rnetpkg "compactrouting/internal/rnet"
	searchtreepkg "compactrouting/internal/searchtree"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *exp.Env
	benchEnvErr  error
)

func benchEnvironment(b *testing.B) *exp.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = exp.GeometricEnv(128, 3)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

func BenchmarkTable1NameIndependent(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := exp.Table1(io.Discard, e, 0.25, 200, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Labeled(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := exp.Table2(io.Discard, e, 0.25, 200, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1RoutingAnatomy(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := exp.Fig1(io.Discard, e, 0.25, 200, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2LabeledAnatomy(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := exp.Fig2(io.Discard, e, 0.25, 200, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3LowerBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := exp.Fig3(io.Discard, 200, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorageScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := exp.Storage(io.Discard, []int{32, 64}, 4, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpsilonSweep(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := exp.Epsilon(io.Discard, e, 150, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks ---------------------------------------------------

var (
	benchNetOnce sync.Once
	benchNet     *Network
	benchNetErr  error
)

func benchNetwork(b *testing.B) *Network {
	b.Helper()
	benchNetOnce.Do(func() {
		benchNet, benchNetErr = RandomGeometricNetwork(128, 0.18, 3)
	})
	if benchNetErr != nil {
		b.Fatal(benchNetErr)
	}
	return benchNet
}

func BenchmarkPreprocessScaleFreeLabeled(b *testing.B) {
	nw := benchNetwork(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := nw.NewScaleFreeLabeled(0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreprocessScaleFreeNameIndependent(b *testing.B) {
	nw := benchNetwork(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := nw.NewScaleFreeNameIndependent(0.25, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteScaleFreeLabeled(b *testing.B) {
	nw := benchNetwork(b)
	s, err := nw.NewScaleFreeLabeled(0.25)
	if err != nil {
		b.Fatal(err)
	}
	pairs := SamplePairs(nw.N(), 256, 7)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := s.Route(p[0], s.Label(p[1])); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteScaleFreeNameIndependent(b *testing.B) {
	nw := benchNetwork(b)
	s, err := nw.NewScaleFreeNameIndependent(0.25, nil)
	if err != nil {
		b.Fatal(err)
	}
	pairs := SamplePairs(nw.N(), 256, 7)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := s.Route(p[0], s.NameOf(p[1])); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteFullTableBaseline(b *testing.B) {
	nw := benchNetwork(b)
	s, _ := nw.NewFullTable()
	pairs := SamplePairs(nw.N(), 256, 7)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := s.Route(p[0], s.Label(p[1])); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := exp.Ablation(io.Discard, e, 150, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPSPBuild(b *testing.B) {
	g, _, err := graphpkg.RandomGeometric(128, 0.18, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		metricpkg.NewAPSP(g)
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g, _, err := graphpkg.RandomGeometric(512, 0.1, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		metricpkg.Dijkstra(g, i%g.N())
	}
}

func BenchmarkPackingBuild(b *testing.B) {
	g, _, err := graphpkg.RandomGeometric(128, 0.18, 3)
	if err != nil {
		b.Fatal(err)
	}
	a := metricpkg.NewAPSP(g)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ballpackpkg.New(a)
	}
}

func BenchmarkHierarchyBuild(b *testing.B) {
	g, _, err := graphpkg.RandomGeometric(128, 0.18, 3)
	if err != nil {
		b.Fatal(err)
	}
	a := metricpkg.NewAPSP(g)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := rnetpkg.NewHierarchy(a, 0)
		rnetpkg.NewNettingTree(h)
	}
}

func BenchmarkSearchTreeBuildAndQuery(b *testing.B) {
	g, _, err := graphpkg.RandomGeometric(200, 0.15, 3)
	if err != nil {
		b.Fatal(err)
	}
	a := metricpkg.NewAPSP(g)
	tr, err := searchtreepkg.New[int](a, 0, a.Diameter(), searchtreepkg.Config{
		Eps:          0.25,
		MinNetRadius: a.MinPairDistance(),
	})
	if err != nil {
		b.Fatal(err)
	}
	pairs := make([]searchtreepkg.Pair[int], len(tr.Members))
	for i, v := range tr.Members {
		pairs[i] = searchtreepkg.Pair[int]{Key: v, Data: v}
	}
	tr.Store(pairs)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, found, _ := tr.Search(tr.Members[i%len(tr.Members)]); !found {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkLowerBoundOptimalStretch(b *testing.B) {
	w := lowerboundpkg.Params{P: 24, Q: 12}.Weights()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := lowerboundpkg.OptimalStretch(w); err != nil {
			b.Fatal(err)
		}
	}
}
