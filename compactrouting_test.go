package compactrouting

import (
	"testing"
)

func testNetwork(t *testing.T) *Network {
	t.Helper()
	nw, err := RandomGeometricNetwork(90, 0.2, 21)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewNetworkFromEdges(t *testing.T) {
	nw, err := NewNetwork(3, []EdgeSpec{{0, 1, 1}, {1, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 3 || nw.M() != 2 {
		t.Fatalf("N=%d M=%d", nw.N(), nw.M())
	}
	if nw.Dist(0, 2) != 3 {
		t.Fatalf("Dist = %v", nw.Dist(0, 2))
	}
	if nw.Diameter() != 3 || nw.NormalizedDiameter() != 3 {
		t.Fatalf("diam=%v norm=%v", nw.Diameter(), nw.NormalizedDiameter())
	}
	if _, err := NewNetwork(3, []EdgeSpec{{0, 1, 1}}); err == nil {
		t.Fatal("disconnected network accepted")
	}
	if _, err := NewNetwork(2, []EdgeSpec{{0, 1, -1}}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestFacadeAllSchemes(t *testing.T) {
	nw := testNetwork(t)
	pairs := SamplePairs(nw.N(), 150, 5)

	sl, err := nw.NewSimpleLabeled(0.5)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := nw.NewScaleFreeLabeled(0.25)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := nw.NewSimpleNameIndependent(0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := nw.NewScaleFreeNameIndependent(0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	ftL, ftN := nw.NewFullTable()
	st, err := nw.NewSingleTree(0)
	if err != nil {
		t.Fatal(err)
	}

	for _, l := range []*Labeled{sl, fl, ftL, st} {
		stats, err := l.Evaluate(pairs)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		if stats.Count != len(pairs) || stats.Max < 1-1e-9 {
			t.Fatalf("%s: stats %+v", l.Name(), stats)
		}
		tb := l.Tables()
		if tb.MaxBits <= 0 || tb.TotalBits < tb.MaxBits {
			t.Fatalf("%s: tables %+v", l.Name(), tb)
		}
	}
	for _, s := range []*NameIndependent{sn, fn, ftN} {
		stats, err := s.Evaluate(pairs)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if stats.Count != len(pairs) {
			t.Fatalf("%s: stats %+v", s.Name(), stats)
		}
	}
	// Full table routes at stretch 1.
	stats, err := ftL.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max > 1+1e-9 {
		t.Fatalf("full table stretch %v", stats.Max)
	}
}

func TestFacadeRouteEndpoints(t *testing.T) {
	nw := testNetwork(t)
	fn, err := nw.NewScaleFreeNameIndependent(0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := fn.Route(3, fn.NameOf(17))
	if err != nil {
		t.Fatal(err)
	}
	if r.Src != 3 || r.Dst != 17 || len(r.Path) < 1 {
		t.Fatalf("route %+v", r)
	}
	if r.Stretch(nw.Dist(3, 17)) < 1-1e-9 {
		t.Fatal("stretch below 1")
	}
}

func TestFacadeExplicitNaming(t *testing.T) {
	nw, err := PathNetwork(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]int, 16)
	for i := range names {
		names[i] = 15 - i
	}
	sn, err := nw.NewSimpleNameIndependent(0.25, names)
	if err != nil {
		t.Fatal(err)
	}
	if sn.NameOf(0) != 15 {
		t.Fatalf("NameOf(0) = %d", sn.NameOf(0))
	}
	r, err := sn.Route(0, 15) // name 15 = node 0 itself
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Fatalf("self route cost %v", r.Cost)
	}
	if _, err := nw.NewSimpleNameIndependent(0.25, []int{1, 1}); err == nil {
		t.Fatal("bad naming accepted")
	}
}

func TestFacadeValidation(t *testing.T) {
	nw := testNetwork(t)
	if err := nw.Validate([][2]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate([][2]int{{0, nw.N()}}); err == nil {
		t.Fatal("bad pair accepted")
	}
	if _, err := nw.NewSingleTree(-1); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestDoublingDimensionEstimate(t *testing.T) {
	nw, err := GridNetwork(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	alpha := nw.DoublingDimension(100, 1)
	if alpha <= 0 || alpha > 5 {
		t.Fatalf("grid doubling estimate %v", alpha)
	}
}

func TestScaleFreeTablesSmallerOnHugeDelta(t *testing.T) {
	// End-to-end restatement of the scale-free claim through the
	// public API.
	expo, err := ExponentialPathNetwork(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	simple, err := expo.NewSimpleLabeled(0.25)
	if err != nil {
		t.Fatal(err)
	}
	free, err := expo.NewScaleFreeLabeled(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if free.Tables().MaxBits >= simple.Tables().MaxBits {
		t.Fatalf("scale-free tables (%d) not smaller than simple (%d) at Delta=4^62",
			free.Tables().MaxBits, simple.Tables().MaxBits)
	}
}
